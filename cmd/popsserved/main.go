// Command popsserved is the long-running POPS routing service: a sharded
// planner server (internal/service) speaking HTTP/JSON. One planner shard
// is created lazily per requested POPS(d, g) shape (LRU-bounded), each
// shard micro-batches concurrent requests onto the batch planner, and a
// fingerprint plan cache answers recurring permutations without replanning.
//
// POST /route/stream streams a plan's slots as NDJSON chunks: the first
// slot records are flushed while later color classes of the factorization
// are still being peeled, so time-to-first-slot is a small fraction of the
// full planning latency (GET /stats exports its histogram), and the shard
// keeps admitting other requests mid-factorization.
//
// Endpoints: POST /route, POST /route/stream, GET /slots, GET /stats,
// GET /healthz — see internal/wire for the JSON schema and
// pops.ServiceClient for the Go client. SIGINT/SIGTERM trigger graceful
// shutdown: the listener stops, and in-flight micro-batches AND open slot
// streams drain before the process exits (connections are force-closed if
// they outlive -drain-timeout, so a wedged stream cannot hold the process
// open forever — cluster rolling restarts rely on this bound).
//
// Usage:
//
//	popsserved -addr :8714 -batch 32 -batch-delay 1ms -cache 1024 -max-shards 64
//	curl -s localhost:8714/route -d '{"d":8,"g":8,"pi":[63,62,...,0]}'
//	curl -sN localhost:8714/route/stream -d '{"d":8,"g":8,"pi":[63,62,...,0]}'
//	curl -s 'localhost:8714/slots?d=8&g=8'
//	curl -s localhost:8714/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pops"
	"pops/internal/service"
)

// debugHandler builds the optional -debug-addr surface: net/http/pprof under
// /debug/pprof/ plus a mirror of /metrics, kept off the serving listener so
// profiling traffic cannot contend with routing traffic (and so operators
// can firewall it separately).
func debugHandler(metrics http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", metrics)
	return mux
}

// parseTenantWeights decodes the -tenant-weights "name=weight,..." flag into
// the service's TenantMix map. Empty input means no weighting (nil map).
func parseTenantWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	weights := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-tenant-weights: %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights: %q needs a positive weight", part)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "popsserved:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is canceled, then shuts down
// gracefully: listener first, then the service drain. ready, when non-nil,
// receives the bound address once the server accepts connections — the
// smoke test uses it with ":0" to avoid port races.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("popsserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8714", "listen address")
		name       = fs.String("name", "", "node identity reported in /stats (default: the listen address)")
		batch      = fs.Int("batch", 32, "micro-batch flush size per shard")
		batchDelay = fs.Duration("batch-delay", time.Millisecond, "micro-batch flush deadline")
		cache      = fs.Int("cache", 1024, "per-shard plan cache entries (0 disables)")
		maxShards  = fs.Int("max-shards", 64, "live planner shards (LRU bound)")
		par        = fs.Int("parallelism", 0, "workers per shard batch (0 = GOMAXPROCS)")
		verify     = fs.Bool("verify", false, "replay every schedule on the simulator before serving it")
		slow       = fs.Int("slow", 64, "slowest traced requests retained for GET /debug/slow")
		debugAddr  = fs.String("debug-addr", "", "optional second listener serving net/http/pprof and /metrics")
		queueDepth = fs.Int("queue-depth", 0, "admission queue bound per shard; excess sheds with 429 (0 = 32x batch)")
		maxStreams = fs.Int("max-streams", 64, "concurrently open slot streams per shard (negative = uncapped)")
		maxDirect  = fs.Int("max-direct", 0, "concurrent direct-path requests per shard (0 = uncapped)")
		tenants    = fs.String("tenant-weights", "", "weighted-fair admission shares, e.g. gold=9,free=1 (unlisted tenants weigh 1)")
		drainWait  time.Duration
	)
	// -drain-timeout bounds graceful shutdown: a wedged connection — a
	// stream consumer that stopped reading, a request body that never
	// finishes — is force-closed at the deadline so cluster rolling
	// restarts cannot hang on one stuck peer. -drain is the original
	// spelling, kept as an alias.
	fs.DurationVar(&drainWait, "drain-timeout", 10*time.Second, "graceful shutdown deadline for open connections")
	fs.DurationVar(&drainWait, "drain", 10*time.Second, "alias for -drain-timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []pops.Option
	if *par > 0 {
		opts = append(opts, pops.WithParallelism(*par))
	}
	if *verify {
		opts = append(opts, pops.WithVerify(true))
	}
	cacheSize := *cache
	if cacheSize <= 0 {
		cacheSize = -1 // Config: negative disables, zero means default
	}
	weights, err := parseTenantWeights(*tenants)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	nodeName := *name
	if nodeName == "" {
		nodeName = "popsserved@" + ln.Addr().String()
	}
	svc := service.New(service.Config{
		Name:           nodeName,
		MaxShards:      *maxShards,
		BatchSize:      *batch,
		BatchDelay:     *batchDelay,
		CacheSize:      cacheSize,
		PlannerOptions: opts,
		SlowRequests:   *slow,
		QueueDepth:     *queueDepth,
		MaxStreams:     *maxStreams,
		MaxDirect:      *maxDirect,
		TenantWeights:  weights,
	})
	srv := &http.Server{Handler: svc.Handler()}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		fmt.Fprintf(stdout, "popsserved: debug listener (pprof, /metrics) on %s\n", dln.Addr())
		go func() { _ = http.Serve(dln, debugHandler(svc.Metrics())) }()
	}
	fmt.Fprintf(stdout, "popsserved: listening on %s (batch=%d delay=%s cache=%d shards≤%d)\n",
		ln.Addr(), *batch, *batchDelay, *cache, *maxShards)
	if ready != nil {
		ready <- ln.Addr()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting and let open connections — batch
	// requests and slot streams alike — finish, then drain the shards'
	// in-flight micro-batches and streams. If a connection outlives the
	// drain deadline (e.g. a stream consumer that stopped reading), it is
	// force-closed so svc.Close cannot block on its stream forever.
	fmt.Fprintln(stdout, "popsserved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	if shutdownErr != nil {
		srv.Close()
	}
	svc.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "popsserved: drained")
	return shutdownErr
}
