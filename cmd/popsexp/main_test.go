package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E5", "E6", "E9", "F", "f1"} {
		tables, err := run(id, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) != 1 {
			t.Fatalf("%s: %d tables", id, len(tables))
		}
		if len(tables[0].Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := run("E99", 1, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	if _, err := run("e3", 1, 1); err != nil {
		t.Fatal(err)
	}
}
