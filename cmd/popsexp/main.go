// Command popsexp regenerates the reproduction experiments E1–E12 (and the
// Figure 1–2 topology checks) defined in DESIGN.md, printing one table per
// experiment. These are the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	popsexp                  # run everything
//	popsexp -e E7            # one experiment
//	popsexp -markdown        # GitHub-flavored markdown output
//	popsexp -seed 7 -trials 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pops/internal/expt"
)

func main() {
	var (
		exp      = flag.String("e", "all", "experiment to run: E1..E16, F, or all")
		seed     = flag.Int64("seed", 1, "random seed for workloads")
		trials   = flag.Int("trials", 3, "trials per configuration where applicable")
		markdown = flag.Bool("markdown", false, "emit markdown tables instead of aligned text")
	)
	flag.Parse()

	tables, err := run(*exp, *seed, *trials)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popsexp: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		var renderErr error
		if *markdown {
			renderErr = t.Markdown(os.Stdout)
		} else {
			renderErr = t.Render(os.Stdout)
		}
		if renderErr != nil {
			fmt.Fprintf(os.Stderr, "popsexp: %v\n", renderErr)
			os.Exit(1)
		}
	}
}

func run(exp string, seed int64, trials int) ([]*expt.Table, error) {
	one := func(t *expt.Table, err error) ([]*expt.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*expt.Table{t}, nil
	}
	switch strings.ToUpper(exp) {
	case "ALL":
		return expt.All(seed)
	case "E1":
		return one(expt.E1(seed, trials))
	case "E2":
		return one(expt.E2(seed))
	case "E3":
		return one(expt.E3())
	case "E4":
		return one(expt.E4(seed, trials))
	case "E5":
		return one(expt.E5())
	case "E6":
		return one(expt.E6())
	case "E7":
		return one(expt.E7(seed))
	case "E8":
		return one(expt.E8(seed))
	case "E9":
		return one(expt.E9())
	case "E10":
		return one(expt.E10(seed, nil))
	case "E11":
		return one(expt.E11(seed))
	case "E12":
		return one(expt.E12(seed))
	case "E13":
		return one(expt.E13(seed))
	case "E14":
		return one(expt.E14(seed))
	case "E15":
		return one(expt.E15(seed))
	case "E16":
		return one(expt.E16(seed))
	case "F", "F1", "F2", "F1/F2":
		return one(expt.EF())
	default:
		return nil, fmt.Errorf("unknown experiment %q (want E1..E16, F, or all)", exp)
	}
}
