package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: pops
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPlannerReuse/route-percall/d=8/g=8         	      20	     69095 ns/op	   43280 B/op	     626 allocs/op
BenchmarkPlannerReuse/planner-reuse/d=8/g=8-8       	      20	     30373 ns/op	   36288 B/op	     482 allocs/op
BenchmarkWithoutMem                                 	      20	     12345 ns/op
BenchmarkOverloadShedding/load-4x                   	       3	  18858651 ns/op	         4.834 admitted_p99_ms	      3471 goodput_rps	       236.0 sheds	 3776090 B/op	   49228 allocs/op
PASS
ok  	pops	2.098s
`
	cpu, results, err := parseBenchOutput(out, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkPlannerReuse/route-percall/d=8/g=8" ||
		r.NsPerOp != 69095 || r.BytesPerOp != 43280 || r.AllocsPerOp != 626 {
		t.Fatalf("first result = %+v", r)
	}
	if len(r.Metrics) != 0 {
		t.Fatalf("standard triple should carry no custom metrics: %+v", r.Metrics)
	}
	if results[1].Name != "BenchmarkPlannerReuse/planner-reuse/d=8/g=8" {
		t.Fatalf("GOMAXPROCS suffix not trimmed: %q", results[1].Name)
	}
	// Custom b.ReportMetric units land between ns/op and the -benchmem pair;
	// they must be collected into Metrics without disturbing the triple.
	m := results[2]
	if m.Name != "BenchmarkOverloadShedding/load-4x" ||
		m.NsPerOp != 18858651 || m.BytesPerOp != 3776090 || m.AllocsPerOp != 49228 {
		t.Fatalf("metrics result = %+v", m)
	}
	if m.Metrics["admitted_p99_ms"] != 4.834 || m.Metrics["goodput_rps"] != 3471 || m.Metrics["sheds"] != 236 {
		t.Fatalf("custom metrics = %+v", m.Metrics)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := []struct {
		in    string
		procs int
		want  string
	}{
		{"BenchmarkFoo-8", 8, "BenchmarkFoo"},
		{"BenchmarkFoo", 8, "BenchmarkFoo"},
		{"BenchmarkFoo/d=8/g=8", 8, "BenchmarkFoo/d=8/g=8"},
		// A name legitimately ending in -<digits> survives when no proc
		// suffix was appended (GOMAXPROCS=1) or the digits differ.
		{"BenchmarkFoo/route-call-4", 1, "BenchmarkFoo/route-call-4"},
		{"BenchmarkFoo/route-call-4", 8, "BenchmarkFoo/route-call-4"},
		{"BenchmarkFoo/route-call-4-8", 8, "BenchmarkFoo/route-call-4"},
		{"BenchmarkFoo-", 8, "BenchmarkFoo-"},
	}
	for _, tc := range cases {
		if got := trimProcSuffix(tc.in, tc.procs); got != tc.want {
			t.Errorf("trimProcSuffix(%q, %d) = %q, want %q", tc.in, tc.procs, got, tc.want)
		}
	}
}
