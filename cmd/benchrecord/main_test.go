package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: pops
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPlannerReuse/route-percall/d=8/g=8         	      20	     69095 ns/op	   43280 B/op	     626 allocs/op
BenchmarkPlannerReuse/planner-reuse/d=8/g=8-8       	      20	     30373 ns/op	   36288 B/op	     482 allocs/op
BenchmarkWithoutMem                                 	      20	     12345 ns/op
PASS
ok  	pops	2.098s
`
	cpu, results, err := parseBenchOutput(out, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkPlannerReuse/route-percall/d=8/g=8" ||
		r.NsPerOp != 69095 || r.BytesPerOp != 43280 || r.AllocsPerOp != 626 {
		t.Fatalf("first result = %+v", r)
	}
	if results[1].Name != "BenchmarkPlannerReuse/planner-reuse/d=8/g=8" {
		t.Fatalf("GOMAXPROCS suffix not trimmed: %q", results[1].Name)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := []struct {
		in    string
		procs int
		want  string
	}{
		{"BenchmarkFoo-8", 8, "BenchmarkFoo"},
		{"BenchmarkFoo", 8, "BenchmarkFoo"},
		{"BenchmarkFoo/d=8/g=8", 8, "BenchmarkFoo/d=8/g=8"},
		// A name legitimately ending in -<digits> survives when no proc
		// suffix was appended (GOMAXPROCS=1) or the digits differ.
		{"BenchmarkFoo/route-call-4", 1, "BenchmarkFoo/route-call-4"},
		{"BenchmarkFoo/route-call-4", 8, "BenchmarkFoo/route-call-4"},
		{"BenchmarkFoo/route-call-4-8", 8, "BenchmarkFoo/route-call-4"},
		{"BenchmarkFoo-", 8, "BenchmarkFoo-"},
	}
	for _, tc := range cases {
		if got := trimProcSuffix(tc.in, tc.procs); got != tc.want {
			t.Errorf("trimProcSuffix(%q, %d) = %q, want %q", tc.in, tc.procs, got, tc.want)
		}
	}
}
