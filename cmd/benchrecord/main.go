// Command benchrecord runs the repository's benchmark set and records the
// results as a BENCH_<date>.json file in the established schema, so perf
// changes land with a comparable artifact. It shells out to `go test` with
// the same command the existing baselines were recorded with and parses the
// standard -benchmem output.
//
// Usage (from the repository root; `make bench` wraps this):
//
//	go run ./cmd/benchrecord -note "short description of the change"
//	go run ./cmd/benchrecord -out BENCH_2026-07-29_factorizer.json \
//	    -bench 'BenchmarkPlannerReuse|BenchmarkRouteBatch' -benchtime 20x
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchResult is one benchmark line of the schema. Metrics holds custom
// b.ReportMetric units (e.g. goodput_rps, admitted_p99_ms) beyond the
// standard triple.
type benchResult struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the BENCH_<date>.json schema used by the baselines.
type benchFile struct {
	Date       string        `json:"date"`
	CommitNote string        `json:"commit_note"`
	Goos       string        `json:"goos"`
	Goarch     string        `json:"goarch"`
	CPU        string        `json:"cpu"`
	Gomaxprocs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	GitCommit  string        `json:"git_commit,omitempty"`
	Command    string        `json:"command"`
	Benchmarks []benchResult `json:"benchmarks"`
	Notes      []string      `json:"notes,omitempty"`
}

// gitCommit returns the current HEAD hash (with a "-dirty" suffix when the
// tree has uncommitted changes), or "" outside a git checkout — baselines
// should still record fine from an exported tarball.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if commit == "" {
		return ""
	}
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(status))) > 0 {
		commit += "-dirty"
	}
	return commit
}

type notesFlag []string

func (n *notesFlag) String() string     { return strings.Join(*n, "; ") }
func (n *notesFlag) Set(s string) error { *n = append(*n, s); return nil }

func main() {
	date := time.Now().Format("2006-01-02")
	var (
		out       = flag.String("out", "BENCH_"+date+".json", "output file")
		note      = flag.String("note", "recorded with cmd/benchrecord", "commit_note field")
		benchRe   = flag.String("bench", "BenchmarkPlannerReuse|BenchmarkRouteBatch", "benchmark regexp")
		benchtime = flag.String("benchtime", "20x", "go test -benchtime value")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		cpu       = flag.Int("cpu", 0, "go test -cpu value (0 = runtime default)")
		notes     notesFlag
	)
	flag.Var(&notes, "notes", "extra notes entry (repeatable)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem", "-benchtime", *benchtime}
	procs := runtime.GOMAXPROCS(0)
	if *cpu > 0 {
		args = append(args, "-cpu", strconv.Itoa(*cpu))
		procs = *cpu
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}
	os.Stdout.Write(raw)

	cpuModel, results, err := parseBenchOutput(string(raw), procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchrecord: no benchmark lines matched %q\n", *benchRe)
		os.Exit(1)
	}
	file := benchFile{
		Date:       date,
		CommitNote: *note,
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		CPU:        cpuModel,
		Gomaxprocs: procs,
		GoVersion:  runtime.Version(),
		GitCommit:  gitCommit(),
		Command:    "go " + strings.Join(args, " "),
		Benchmarks: results,
		Notes:      notes,
	}
	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: wrote %s (%d benchmarks)\n", *out, len(results))
}

// trimProcSuffix drops the trailing -P GOMAXPROCS suffix go test appends to
// benchmark names when GOMAXPROCS > 1, keeping names comparable with the
// GOMAXPROCS=1 baselines. Only the exact "-<procs>" suffix is stripped, so
// a benchmark whose own name happens to end in -<digits> is never mangled
// (at GOMAXPROCS=1 go test appends no suffix and nothing is trimmed).
func trimProcSuffix(name string, procs int) string {
	if procs <= 1 {
		return name
	}
	suffix := "-" + strconv.Itoa(procs)
	if rest, ok := strings.CutSuffix(name, suffix); ok && rest != "" {
		return rest
	}
	return name
}

// parseBenchOutput extracts the cpu header and the benchmark result lines
// from standard `go test -bench -benchmem` output. Lines look like:
//
//	BenchmarkFoo/sub-8   20   12345 ns/op   678 B/op   9 allocs/op
//
// (the -P GOMAXPROCS suffix is absent when GOMAXPROCS=1; procs names the
// value the benchmarks ran with).
func parseBenchOutput(out string, procs int) (cpu string, results []benchResult, err error) {
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iters, then (value, unit) pairs: "ns/op", "B/op", and
		// "allocs/op" are all required (benchrecord always runs -benchmem;
		// lines without the full triple are skipped, as before), with any
		// custom b.ReportMetric units (e.g. "goodput_rps") collected too.
		if len(fields) < 8 || len(fields)%2 != 0 || fields[3] != "ns/op" {
			continue
		}
		res := benchResult{Name: trimProcSuffix(fields[0], procs)}
		sawBytes, sawAllocs := false, false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				sawBytes = true
				res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				sawAllocs = true
				res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			default:
				var f float64
				if f, err = strconv.ParseFloat(val, 64); err == nil {
					if res.Metrics == nil {
						res.Metrics = make(map[string]float64)
					}
					res.Metrics[unit] = f
				}
			}
			if err != nil {
				return cpu, nil, fmt.Errorf("parsing %s in %q: %w", unit, line, err)
			}
		}
		if !sawBytes || !sawAllocs {
			continue
		}
		results = append(results, res)
	}
	return cpu, results, sc.Err()
}
