package main

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pops"
	"pops/internal/service"
)

// testWriter routes the proxy's stdout lines into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// startBackends boots n in-process popsserved backends (real service
// handlers over real HTTP) and returns their servers and URLs.
func startBackends(t *testing.T, n int) ([]*httptest.Server, []string) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{Name: fmt.Sprintf("node-%d", i), BatchDelay: 200 * time.Microsecond})
		srv := httptest.NewServer(svc.Handler())
		servers[i], urls[i] = srv, srv.URL
		t.Cleanup(srv.Close)
		t.Cleanup(svc.Close)
	}
	return servers, urls
}

// startProxy boots popsproxy via its run entry point on an ephemeral port.
func startProxy(t *testing.T, args ...string) (net.Addr, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), testWriter{t}, ready)
	}()
	select {
	case addr := <-ready:
		return addr, cancel, done
	case err := <-done:
		t.Fatalf("proxy exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("proxy never became ready")
	}
	return nil, nil, nil
}

// TestClusterSmoke is the end-to-end smoke `make cluster-smoke` runs: boot
// three in-process popsserved backends and a popsproxy front door, drive a
// permutation trace through the unchanged single-node client, kill one
// backend mid-trace, and assert (a) every request still succeeds — the dead
// node is ejected and its keys fail over to the next ring owner — and
// (b) a replayed permutation is answered from the owning node's fingerprint
// plan cache, proving shape-affine placement survived the membership change.
func TestClusterSmoke(t *testing.T) {
	servers, urls := startBackends(t, 3)
	addr, cancel, done := startProxy(t,
		"-backends", strings.Join(urls, ","),
		"-health-interval", "20ms",
		"-retry-backoff", "1ms",
	)

	client := pops.NewServiceClient("http://"+addr.String(), nil)
	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	const d, g = 4, 8
	n := d * g
	trace := make([][]int, 24)
	for i := range trace {
		pi := make([]int, n)
		for j := range pi {
			pi[j] = (j + i + 1) % n
		}
		trace[i] = pi
	}

	// First half of the trace with the full fleet.
	for i := 0; i < len(trace)/2; i++ {
		plan, err := client.Route(ctx, d, g, trace[i])
		if err != nil {
			t.Fatalf("request %d failed with the full fleet: %v", i, err)
		}
		if plan.Slots != pops.OptimalSlots(d, g) {
			t.Fatalf("request %d: slots = %d, want %d", i, plan.Slots, pops.OptimalSlots(d, g))
		}
	}

	// Kill one backend mid-trace. In-flight and subsequent requests owned by
	// the dead node must fail over; nothing may surface to the client.
	servers[2].CloseClientConnections()
	servers[2].Close()

	// Zero failed requests after ejection: the full trace again. Keys owned
	// by the dead node move to their next ring owner and are re-planned
	// there; keys of the survivors stay put.
	for i, pi := range trace {
		if _, err := client.Route(ctx, d, g, pi); err != nil {
			t.Fatalf("request %d failed after killing a backend: %v", i, err)
		}
	}

	// Affinity after the membership change: every permutation now has a live
	// owner that has planned it, so a full replay must be answered entirely
	// from the owning nodes' fingerprint plan caches.
	hits := 0
	for i, pi := range trace {
		plan, err := client.Route(ctx, d, g, pi)
		if err != nil {
			t.Fatalf("replay %d failed: %v", i, err)
		}
		if plan.Cached {
			hits++
		}
	}
	if hits != len(trace) {
		t.Fatalf("only %d of %d replays hit the owning node's plan cache", hits, len(trace))
	}

	// The aggregated stats must report the dead node unhealthy and attribute
	// traffic to the survivors.
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server != "popsproxy" || len(stats.Backends) != 3 {
		t.Fatalf("stats = server %q with %d backends, want popsproxy with 3", stats.Server, len(stats.Backends))
	}
	if stats.Backends[2].Healthy {
		t.Fatal("killed backend still reported healthy")
	}
	if stats.CacheHits == 0 {
		t.Fatal("aggregated stats report no cache hits despite the replayed trace")
	}

	// Graceful drain must complete promptly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("proxy did not drain within 15s")
	}
}

// TestClusterSmokeStream streams through the proxy and replays the stream,
// asserting the replay is served from the owning node's cache.
func TestClusterSmokeStream(t *testing.T) {
	_, urls := startBackends(t, 3)
	addr, cancel, done := startProxy(t, "-backends", strings.Join(urls, ","))
	client := pops.NewServiceClient("http://"+addr.String(), nil)
	ctx := context.Background()

	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	for attempt := 1; attempt <= 2; attempt++ {
		st, err := client.RouteStream(ctx, d, g, pi)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for {
			rec, err := st.Next()
			if err != nil {
				t.Fatalf("attempt %d: %v", attempt, err)
			}
			if rec == nil {
				break
			}
			got++
		}
		if got != st.Meta().Fragments {
			t.Fatalf("attempt %d: %d fragments, meta promised %d", attempt, got, st.Meta().Fragments)
		}
		if attempt == 2 && !st.Meta().Cached {
			t.Fatal("streamed replay was not a cache hit on the owning node")
		}
		st.Close()
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("proxy did not drain within 15s")
	}
}

// TestClusterSmokeStreamBinary streams through the proxy with the codec
// pinned to binary: CodecBinary fails unless the answer arrives with the
// application/x-pops-bin Content-Type, so a passing run proves the proxy
// relayed the backend's binary framing (Content-Type included) end to end,
// re-framed chunk by chunk, and that the replay still hits the owning
// node's plan cache.
func TestClusterSmokeStreamBinary(t *testing.T) {
	_, urls := startBackends(t, 3)
	addr, cancel, done := startProxy(t, "-backends", strings.Join(urls, ","))
	client := pops.NewServiceClient("http://"+addr.String(), nil).WithCodec(pops.CodecBinary)
	ctx := context.Background()

	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	for attempt := 1; attempt <= 2; attempt++ {
		st, err := client.RouteStream(ctx, d, g, pi)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		got := 0
		for {
			rec, err := st.Next()
			if err != nil {
				t.Fatalf("attempt %d: %v", attempt, err)
			}
			if rec == nil {
				break
			}
			got++
		}
		if got != st.Meta().Fragments {
			t.Fatalf("attempt %d: %d fragments, meta promised %d", attempt, got, st.Meta().Fragments)
		}
		if st.Done() == nil {
			t.Fatalf("attempt %d: stream ended without a done frame", attempt)
		}
		if attempt == 2 && !st.Meta().Cached {
			t.Fatal("binary streamed replay was not a cache hit on the owning node")
		}
		st.Close()
	}

	// The unary path holds the same pin: a binary-only client must round-trip
	// /route through the proxy.
	plan, err := client.Route(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("slots = %d, want %d", plan.Slots, pops.OptimalSlots(d, g))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("proxy did not drain within 15s")
	}
}

// TestRunRequiresBackends pins the required-flag validation to an error.
func TestRunRequiresBackends(t *testing.T) {
	if err := run(context.Background(), nil, testWriter{t}, nil); err == nil {
		t.Fatal("run accepted an empty -backends")
	}
}

// TestRunRejectsBadFlags pins flag-parse failures to an error.
func TestRunRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-retries", "x"}, testWriter{t}, nil)
	if err == nil {
		t.Fatal("bad flags accepted")
	}
}
