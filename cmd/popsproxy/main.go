// Command popsproxy is the cluster front door of the POPS routing service:
// it fans the popsserved wire protocol out across a fleet of backends on a
// consistent-hash ring keyed by (d, g, workload fingerprint), so replayed
// and duplicate in-flight workloads land on the node that already owns the
// materialized plan — every node's shard LRU and fingerprint plan cache
// stay hot. Backends are health-checked in the background (ejected after
// consecutive /healthz failures, re-admitted on recovery), connection
// errors fail over to the next ring owner with bounded backoff, slot
// streams are re-framed record by record without buffering whole plans, and
// GET /stats answers with the fleet aggregate plus a per-backend breakdown.
//
// The HTTP surface is byte-compatible with a single popsserved node, so
// pops.ServiceClient — and every example that uses it — works unchanged
// against a proxy. SIGINT/SIGTERM trigger graceful drain mirroring
// popsserved: the listener stops and in-flight proxied requests and streams
// finish (force-closed past -drain-timeout).
//
// Usage:
//
//	popsproxy -addr :8700 -backends http://10.0.0.1:8714,http://10.0.0.2:8714
//	curl -s localhost:8700/route -d '{"d":8,"g":8,"pi":[63,62,...,0]}'
//	curl -s localhost:8700/stats | jq .backends
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pops/internal/cluster"
)

// debugHandler builds the optional -debug-addr surface: net/http/pprof under
// /debug/pprof/ plus a mirror of /metrics, kept off the serving listener so
// profiling traffic cannot contend with proxied traffic.
func debugHandler(metrics http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", metrics)
	return mux
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "popsproxy:", err)
		os.Exit(1)
	}
}

// run starts the proxy and blocks until ctx is canceled, then shuts down
// gracefully: listener first, then the proxy drain. ready, when non-nil,
// receives the bound address once the server accepts connections — tests
// use it with ":0" to avoid port races.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("popsproxy", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", ":8700", "listen address")
		backends       = fs.String("backends", "", "comma-separated popsserved base URLs (required)")
		replicas       = fs.Int("replicas", 64, "virtual nodes per backend on the hash ring")
		healthInterval = fs.Duration("health-interval", time.Second, "background health probe period")
		healthTimeout  = fs.Duration("health-timeout", 2*time.Second, "health probe deadline")
		failAfter      = fs.Int("fail-after", 2, "consecutive failed probes before a backend is ejected")
		retries        = fs.Int("retries", 2, "failover attempts after a connection error")
		retryBackoff   = fs.Duration("retry-backoff", 10*time.Millisecond, "backoff before the first failover attempt (doubles per attempt)")
		slow           = fs.Int("slow", 64, "slowest traced requests retained for GET /debug/slow")
		debugAddr      = fs.String("debug-addr", "", "optional second listener serving net/http/pprof and /metrics")
		maxPerBackend  = fs.Int("max-per-backend", 128, "concurrent forwards per backend; excess sheds with 429 (negative = uncapped)")
		brFailures     = fs.Int("breaker-failures", 5, "consecutive request failures that open a backend's circuit breaker (negative disables)")
		brLatency      = fs.Duration("breaker-latency", 0, "forward-latency EWMA that opens the breaker (0 disables)")
		brCooldown     = fs.Duration("breaker-cooldown", time.Second, "open-breaker dwell before a half-open probe")
		drainWait      time.Duration
	)
	fs.DurationVar(&drainWait, "drain-timeout", 10*time.Second, "graceful shutdown deadline for open connections")
	fs.DurationVar(&drainWait, "drain", 10*time.Second, "alias for -drain-timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		return errors.New("-backends is required (comma-separated popsserved base URLs)")
	}

	proxy, err := cluster.New(cluster.Config{
		Backends:        urls,
		Replicas:        *replicas,
		HealthInterval:  *healthInterval,
		HealthTimeout:   *healthTimeout,
		FailAfter:       *failAfter,
		Retries:         *retries,
		RetryBackoff:    *retryBackoff,
		SlowRequests:    *slow,
		MaxPerBackend:   *maxPerBackend,
		BreakerFailures: *brFailures,
		BreakerLatency:  *brLatency,
		BreakerCooldown: *brCooldown,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		proxy.Close()
		return err
	}
	srv := &http.Server{Handler: proxy.Handler()}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			proxy.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		fmt.Fprintf(stdout, "popsproxy: debug listener (pprof, /metrics) on %s\n", dln.Addr())
		go func() { _ = http.Serve(dln, debugHandler(proxy.Metrics())) }()
	}
	fmt.Fprintf(stdout, "popsproxy: listening on %s, %d backend(s) on the ring (replicas=%d fail-after=%d retries=%d)\n",
		ln.Addr(), len(urls), *replicas, *failAfter, *retries)
	if ready != nil {
		ready <- ln.Addr()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		proxy.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain, mirroring popsserved: stop accepting, let in-flight
	// proxied requests and pass-through streams finish, force-close
	// connections that outlive -drain-timeout so a wedged stream cannot
	// hold the process open forever.
	fmt.Fprintln(stdout, "popsproxy: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	if shutdownErr != nil {
		srv.Close()
	}
	proxy.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "popsproxy: drained")
	return shutdownErr
}
