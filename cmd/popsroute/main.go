// Command popsroute plans and verifies the routing of a workload on a
// POPS(d, g) network and prints the resulting schedule. The workload is the
// unit of planning (pops.Workload, executed by Planner.Execute): a
// permutation (default, with pluggable routing strategy — Theorem 2's
// universal relay router, the greedy and optimal direct baselines, the
// Gravenstreter–Melhem single-slot router, or "auto"), the all-to-all
// complete exchange, or the one-to-all broadcast.
//
// Usage:
//
//	popsroute -d 3 -g 3 -perm 4,8,3,6,0,2,7,1,5   # Figure 3 of the paper
//	popsroute -d 8 -g 4 -family random -seed 7
//	popsroute -d 4 -g 4 -family reversal -schedule
//	popsroute -d 16 -g 4 -family transpose -strategy auto
//	popsroute -d 4 -g 4 -workload all-to-all
//	popsroute -d 3 -g 3 -workload one-to-all -speaker 4 -schedule
//	popsroute -d 3 -g 3 -topology
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"pops"
	"pops/internal/popsnet"
)

func main() {
	var (
		d        = flag.Int("d", 3, "processors per group")
		g        = flag.Int("g", 3, "number of groups")
		workload = flag.String("workload", pops.WorkloadPermutation,
			"workload kind: permutation | all-to-all | one-to-all")
		permSpec = flag.String("perm", "", "explicit permutation, comma-separated destinations")
		family   = flag.String("family", "", "named family: random | derangement | reversal | rotation | transpose | identity")
		strategy = flag.String("strategy", pops.StrategyTheoremTwo,
			fmt.Sprintf("routing strategy (permutation workloads): %s", strings.Join(pops.Strategies(), " | ")))
		speaker  = flag.Int("speaker", 0, "broadcasting processor (one-to-all workloads)")
		seed     = flag.Int64("seed", 1, "seed for random families")
		topology = flag.Bool("topology", false, "print network structure and exit")
		schedule = flag.Bool("schedule", false, "print the full slot schedule")
		stats    = flag.Bool("stats", false, "print schedule resource statistics")
	)
	flag.Parse()

	if err := run(*d, *g, *workload, *permSpec, *family, *strategy, *speaker, *seed, *topology, *schedule, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "popsroute: %v\n", err)
		os.Exit(1)
	}
}

func run(d, g int, workload, permSpec, family, strategy string, speaker int, seed int64, topology, schedule, stats bool) error {
	nw, err := pops.NewNetwork(d, g)
	if err != nil {
		return err
	}
	if topology {
		printTopology(nw)
		return nil
	}
	if workload != "" && workload != pops.WorkloadPermutation {
		return runWorkload(nw, workload, speaker, schedule, stats)
	}

	pi, err := buildPermutation(nw, permSpec, family, seed)
	if err != nil {
		return err
	}

	router, err := pops.NewRouter(strategy, d, g, pops.WithVerify(true))
	if err != nil {
		return err
	}
	plan, err := router.Route(pi)
	if err != nil {
		return err
	}

	fmt.Printf("%v: n=%d processors, %d couplers\n", nw, nw.N(), nw.Couplers())
	fmt.Printf("permutation: %v\n", pi)
	lb, prop, err := pops.LowerBound(d, g, pi)
	if err != nil {
		return err
	}
	fmt.Printf("strategy %s: %d slots (Theorem 2 bound: %d, lower bound: %d via %s)\n",
		plan.Strategy, plan.SlotCount(), pops.OptimalSlots(d, g), lb, prop)

	fmt.Println("strategy comparison (predicted slots):")
	routers, err := pops.AllRouters(d, g)
	if err != nil {
		return err
	}
	for _, r := range routers {
		predicted, err := r.PredictedSlots(pi)
		if err != nil {
			fmt.Printf("  %-14s n/a (%v)\n", r.Name(), err)
			continue
		}
		fmt.Printf("  %-14s %d slots\n", r.Name(), predicted)
	}

	if plan.Colors != nil {
		fmt.Println("relay assignment (packet: intermediate group @ round):")
		for p := 0; p < nw.N(); p++ {
			fmt.Printf("  packet %3d -> proc %3d   via group %d round %d\n",
				p, pi[p], plan.IntermediateGroup(p), plan.Round(p))
		}
	}
	if schedule {
		if err := plan.Schedule().Format(os.Stdout); err != nil {
			return err
		}
	}
	if stats {
		st := popsnet.ComputeStats(plan.Schedule())
		fmt.Printf("schedule stats: %d slots, %d sends, %d recvs, %d/%d coupler-slots used (utilization %.2f)\n",
			st.Slots, st.Sends, st.Recvs, st.CouplersUsed, st.Slots*st.MaxCouplers, st.Utilization)
	}
	return nil
}

// runWorkload executes a non-permutation workload through the unified
// Planner.Execute surface and prints its plan summary.
func runWorkload(nw pops.Network, workload string, speaker int, schedule, stats bool) error {
	var w pops.Workload
	switch workload {
	case pops.WorkloadAllToAll:
		w = pops.AllToAll()
	case pops.WorkloadOneToAll:
		w = pops.OneToAll(speaker)
	default:
		return fmt.Errorf("unknown workload %q (want permutation | all-to-all | one-to-all)", workload)
	}
	p, err := pops.NewPlanner(nw.D, nw.G, pops.WithVerify(true))
	if err != nil {
		return err
	}
	plan, err := p.Execute(context.Background(), w)
	if err != nil {
		return err
	}
	fmt.Printf("%v: n=%d processors, %d couplers\n", nw, nw.N(), nw.Couplers())
	switch workload {
	case pops.WorkloadAllToAll:
		fmt.Printf("workload all-to-all: %d requests, degree h = %d, decomposed into %d factors\n",
			len(plan.Reqs), plan.H, len(plan.Factors))
		fmt.Printf("strategy %s: %d slots (= h · OptimalSlots = %d)\n",
			plan.Strategy, plan.SlotCount(), pops.HRelationSlots(nw.D, nw.G, plan.H))
	case pops.WorkloadOneToAll:
		fmt.Printf("workload one-to-all: speaker %d reaches all %d processors\n", plan.Speaker, nw.N())
		fmt.Printf("strategy %s: %d slot (diameter-1 broadcast)\n", plan.Strategy, plan.SlotCount())
	}
	if _, err := plan.Verify(); err != nil {
		return fmt.Errorf("schedule failed simulation: %w", err)
	}
	fmt.Println("schedule verified on the slot-level simulator")
	if schedule {
		if err := plan.Schedule().Format(os.Stdout); err != nil {
			return err
		}
	}
	if stats {
		st := popsnet.ComputeStats(plan.Schedule())
		fmt.Printf("schedule stats: %d slots, %d sends, %d recvs, %d/%d coupler-slots used (utilization %.2f)\n",
			st.Slots, st.Sends, st.Recvs, st.CouplersUsed, st.Slots*st.MaxCouplers, st.Utilization)
	}
	return nil
}

func buildPermutation(nw pops.Network, permSpec, family string, seed int64) ([]int, error) {
	n := nw.N()
	if permSpec != "" {
		parts := strings.Split(permSpec, ",")
		pi := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad permutation entry %q: %w", p, err)
			}
			pi = append(pi, v)
		}
		if len(pi) != n {
			return nil, fmt.Errorf("permutation has %d entries, network has %d processors", len(pi), n)
		}
		if err := pops.ValidatePermutation(pi); err != nil {
			return nil, err
		}
		return pi, nil
	}
	rng := rand.New(rand.NewSource(seed))
	switch family {
	case "", "random":
		return pops.RandomPermutation(n, rng), nil
	case "derangement":
		return pops.RandomDerangement(n, rng), nil
	case "reversal":
		return pops.VectorReversal(n), nil
	case "rotation":
		return pops.GroupRotation(nw.D, nw.G, 1)
	case "transpose":
		r := 1
		for (r+1)*(r+1) <= n {
			r++
		}
		if r*r != n {
			return nil, fmt.Errorf("transpose needs a square processor count, n=%d", n)
		}
		return pops.Transpose(r, r), nil
	case "identity":
		return pops.IdentityPermutation(n), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func printTopology(nw pops.Network) {
	fmt.Printf("%v\n", nw)
	fmt.Printf("  processors: %d (groups of %d)\n", nw.N(), nw.D)
	fmt.Printf("  couplers:   %d (= g²)\n", nw.Couplers())
	fmt.Printf("  diameter:   1 (coupler c(b,a) joins every group pair)\n")
	fmt.Printf("  per-processor: %d transmitters, %d receivers\n", nw.G, nw.G)
	for b := 0; b < nw.G; b++ {
		for a := 0; a < nw.G; a++ {
			fmt.Printf("  c(%d,%d): sources group %d [%d..%d], destinations group %d [%d..%d]\n",
				b, a, a, a*nw.D, a*nw.D+nw.D-1, b, b*nw.D, b*nw.D+nw.D-1)
		}
	}
}
