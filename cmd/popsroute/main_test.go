package main

import (
	"testing"

	"pops"
)

func TestBuildPermutationExplicit(t *testing.T) {
	nw, err := pops.NewNetwork(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := buildPermutation(nw, "4,8,3,6,0,2,7,1,5", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 4 || pi[8] != 5 {
		t.Fatalf("parsed permutation = %v", pi)
	}
}

func TestBuildPermutationRejectsBadSpecs(t *testing.T) {
	nw, err := pops.NewNetwork(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{"1,2", "0,1,2,x", "0,0,1,1", "0,1,2,9"}
	for _, spec := range cases {
		if _, err := buildPermutation(nw, spec, "", 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestBuildPermutationFamilies(t *testing.T) {
	nw, err := pops.NewNetwork(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"", "random", "derangement", "reversal", "rotation", "transpose", "identity"} {
		pi, err := buildPermutation(nw, "", fam, 7)
		if err != nil {
			t.Fatalf("family %q: %v", fam, err)
		}
		if err := pops.ValidatePermutation(pi); err != nil {
			t.Fatalf("family %q: %v", fam, err)
		}
	}
	if _, err := buildPermutation(nw, "", "nonsense", 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	// Transpose on a non-square processor count.
	nw2, err := pops.NewNetwork(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildPermutation(nw2, "", "transpose", 1); err == nil {
		t.Fatal("transpose accepted non-square n")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Figure 3 instance, with and without schedule printing.
	if err := run(3, 3, "", "4,8,3,6,0,2,7,1,5", "", pops.StrategyTheoremTwo, 0, 1, false, true, true); err != nil {
		t.Fatal(err)
	}
	if err := run(2, 4, "", "", "reversal", pops.StrategyTheoremTwo, 0, 1, false, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run(3, 3, "", "", "", pops.StrategyTheoremTwo, 0, 1, true, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 3, "", "", "", pops.StrategyTheoremTwo, 0, 1, false, false, false); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestRunWorkloads(t *testing.T) {
	// The non-permutation workloads of the Execute surface: the complete
	// exchange and the broadcast, both planned and verified end to end.
	if err := run(2, 2, "all-to-all", "", "", "", 0, 1, false, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run(3, 3, "one-to-all", "", "", "", 4, 1, false, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run(3, 3, "gossip", "", "", "", 0, 1, false, false, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run(3, 3, "one-to-all", "", "", "", 99, 1, false, false, false); err == nil {
		t.Fatal("out-of-range speaker accepted")
	}
}

func TestRunEveryStrategy(t *testing.T) {
	// Transpose on POPS(16,4): single-slot fails (not routable), every other
	// strategy plans and verifies; auto must pick the direct-optimal route.
	for _, strategy := range pops.Strategies() {
		err := run(16, 4, "", "", "transpose", strategy, 0, 1, false, false, false)
		if strategy == pops.StrategySingleSlot {
			if err == nil {
				t.Fatal("singleslot accepted a non-single-slot-routable permutation")
			}
			continue
		}
		if err != nil {
			t.Fatalf("strategy %s: %v", strategy, err)
		}
	}
	if err := run(2, 2, "", "", "", "warp-drive", 0, 1, false, false, false); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
