package pops

import (
	"fmt"

	"pops/internal/core"
)

// Planner is the batch-friendly entry point for planning many permutations
// on one POPS(d, g) network: the network shape is validated once, and the
// internal demand-graph and invariant-check buffers of the Theorem 2 planner
// are recycled across calls instead of reallocated per permutation. It is
// what a routing service should hold per network shape.
//
// A Planner is safe for concurrent use: it keeps a free list of per-worker
// core planners (bounded by WithParallelism), so concurrent Route calls and
// RouteBatch workers never share scratch memory.
type Planner struct {
	nw   Network
	opts Options
	par  int
	free chan *core.Planner
}

// NewPlanner validates the POPS(d, g) shape once and returns a Planner for
// it. WithParallelism bounds the worker pool of RouteBatch and the size of
// the internal buffer free list; the default is GOMAXPROCS.
func NewPlanner(d, g int, opts ...Option) (*Planner, error) {
	nw, err := NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	o := NewOptions(opts...)
	par := o.Workers()
	return &Planner{nw: nw, opts: o, par: par, free: make(chan *core.Planner, par)}, nil
}

// Network returns the planner's POPS(d, g) shape.
func (p *Planner) Network() Network { return p.nw }

func (p *Planner) acquire() *core.Planner {
	select {
	case pl := <-p.free:
		return pl
	default:
		return core.NewPlannerFor(p.nw, p.opts)
	}
}

func (p *Planner) release(pl *core.Planner) {
	select {
	case p.free <- pl:
	default: // free list full; let the extra planner be collected
	}
}

// Route plans the Theorem 2 routing of pi, reusing the planner's internal
// buffers. The returned Plan owns its memory and stays valid across
// subsequent calls.
func (p *Planner) Route(pi []int) (*Plan, error) {
	pl := p.acquire()
	defer p.release(pl)
	return pl.Plan(pi)
}

// PredictedSlots returns the slot count every Route call on this planner
// will use: OptimalSlots(d, g), independent of the permutation.
func (p *Planner) PredictedSlots() int { return OptimalSlots(p.nw.D, p.nw.G) }

// RouteBatch plans every permutation of pis on a bounded worker pool
// (WithParallelism workers) and returns the plans in input order. Results
// are identical to calling Route sequentially on each permutation: workers
// only amortize allocations, they do not change the construction. All
// entries are planned even when some fail; if any did, RouteBatch returns
// nil plans and the error of the lowest-index failing permutation.
func (p *Planner) RouteBatch(pis [][]int) ([]*Plan, error) {
	plans := make([]*Plan, len(pis))
	errs := make([]error, len(pis))
	core.ForEach(p.par, len(pis), p.acquire, p.release, func(pl *core.Planner, i int) {
		plans[i], errs[i] = pl.Plan(pis[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pops: batch permutation %d: %w", i, err)
		}
	}
	return plans, nil
}
