package pops

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pops/internal/core"
	"pops/internal/obs"
	"pops/internal/perms"
)

// Planner is the entry point for planning workloads on one POPS(d, g)
// network: the network shape is validated once, and the internal
// demand-graph, coloring-arena and invariant-check buffers of the planners
// are recycled across calls instead of reallocated per workload. It is what
// a routing service should hold per network shape. Workloads — permutations,
// h-relations, the complete exchange, broadcasts — are executed by the one
// pair of context-aware methods Execute and ExecuteStream.
//
// A Planner is safe for concurrent use: it keeps a free list of per-worker
// core planners (bounded by WithParallelism), so concurrent Execute calls
// and RouteBatch workers never share scratch memory.
//
// With WithPlanCache(n), the planner additionally memoizes up to n plans
// keyed by the workload fingerprint (WorkloadFingerprint — for permutations
// exactly PermutationFingerprint): recurring workloads (BPC families, mesh
// shifts, the all-to-all exchange) are answered from the cache instead of
// replanned. Hits return the same *Plan pointer to every caller, so plans
// must be treated as immutable — which Plan's read-only method set already
// assumes.
type Planner struct {
	nw    Network
	opts  Options
	par   int
	free  chan *core.Planner
	cache *planCache // nil without WithPlanCache
}

// NewPlanner validates the POPS(d, g) shape once and returns a Planner for
// it. WithParallelism bounds the worker pool of RouteBatch and the size of
// the internal buffer free list; the default is GOMAXPROCS.
func NewPlanner(d, g int, opts ...Option) (*Planner, error) {
	nw, err := NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	o := NewOptions(opts...)
	par := o.Workers()
	p := &Planner{nw: nw, opts: o, par: par, free: make(chan *core.Planner, par)}
	if o.PlanCache > 0 {
		p.cache = newPlanCache(o.PlanCache)
	}
	return p, nil
}

// Network returns the planner's POPS(d, g) shape.
func (p *Planner) Network() Network { return p.nw }

func (p *Planner) acquire() *core.Planner {
	select {
	case pl := <-p.free:
		return pl
	default:
		return core.NewPlannerFor(p.nw, p.opts)
	}
}

func (p *Planner) release(pl *core.Planner) {
	select {
	case p.free <- pl:
	default: // free list full; let the extra planner be collected
	}
}

// observePlan notifies the installed PlanObserver, if any, of one completed
// plan. start is when the caller began the route (before the cache lookup),
// so cached observations measure the hit path, not planning.
func (p *Planner) observePlan(strategy string, cached bool, start time.Time) {
	if o := p.opts.Observer; o != nil {
		o.ObservePlan(strategy, cached, time.Since(start))
	}
}

// routeOne plans pi through the fingerprint cache when one is configured:
// a verified hit skips planning entirely, a miss plans and memoizes. The
// returned bool reports whether the plan came from the cache. Cache lookup
// and memoization are attributed to the cache phase of ctx's trace span;
// the planning itself records its own phases inside PlanCtx.
func (p *Planner) routeOne(ctx context.Context, pl *core.Planner, pi []int) (*Plan, bool, error) {
	start := time.Now()
	if p.cache == nil {
		plan, err := pl.PlanCtx(ctx, pi)
		if err != nil {
			return nil, false, err
		}
		p.observePlan(plan.Strategy, false, start)
		return plan, false, nil
	}
	sp := obs.SpanFromContext(ctx)
	sp.Begin(obs.PhaseCache)
	fp := perms.Fingerprint(pi)
	plan, ok := p.cache.get(fp, cacheKindPermutation, pi)
	sp.End()
	if ok {
		p.observePlan(plan.Strategy, true, start)
		return plan, true, nil
	}
	plan, err := pl.PlanCtx(ctx, pi)
	if err != nil {
		return nil, false, err
	}
	sp.Begin(obs.PhaseCache)
	p.cache.put(fp, cacheKindPermutation, pi, plan)
	sp.End()
	p.observePlan(plan.Strategy, false, start)
	return plan, false, nil
}

// Route plans the Theorem 2 routing of pi, reusing the planner's internal
// buffers.
//
// Deprecated: use Execute with a Permutation workload, which also carries a
// context for cancellation. Route remains a thin wrapper over it and
// returns byte-identical plans (including fingerprint-cache behavior).
func (p *Planner) Route(pi []int) (*Plan, error) {
	plan, _, err := p.routePermutation(context.Background(), pi)
	return plan, err
}

// CachedPlan reports whether pi's plan is currently memoized, returning it
// on a verified hit. The lookup counts toward CacheStats like any other.
// Without WithPlanCache it reports false and counts nothing.
func (p *Planner) CachedPlan(pi []int) (*Plan, bool) {
	return p.CachedWorkload(Permutation(pi))
}

// CachedWorkload reports whether w's plan is currently memoized, returning
// it on a verified hit. The lookup counts toward CacheStats like any other.
// Without WithPlanCache it reports false and counts nothing.
func (p *Planner) CachedWorkload(w Workload) (*Plan, bool) {
	if p.cache == nil || w == nil {
		return nil, false
	}
	key, kind, ident := workloadKey(w)
	return p.cache.get(key, kind, ident)
}

// CacheStats returns a snapshot of the fingerprint plan cache counters. The
// zero CacheStats is returned when the planner was built without
// WithPlanCache.
func (p *Planner) CacheStats() CacheStats {
	if p.cache == nil {
		return CacheStats{}
	}
	return p.cache.snapshot()
}

// PredictedSlots returns the slot count every Route call on this planner
// will use: OptimalSlots(d, g), independent of the permutation.
func (p *Planner) PredictedSlots() int { return OptimalSlots(p.nw.D, p.nw.G) }

// BatchError records the failure of one permutation within a RouteBatch
// call. The joined error RouteBatch returns is built from one BatchError per
// failing index; callers needing per-index attribution unwrap the join
// (errors.Join's Unwrap() []error) and errors.As each element.
type BatchError struct {
	Index int   // position of the failing permutation in the batch
	Err   error // the underlying planning error
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("pops: batch permutation %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying planning error to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// RouteBatch plans every permutation of pis on a bounded worker pool
// (WithParallelism workers) and returns the plans in input order. Results
// are identical to calling Route sequentially on each permutation: workers
// only amortize allocations, they do not change the construction.
//
// All entries are planned even when some fail. Successful plans are always
// returned at their indices; a failing permutation leaves a nil plan at its
// index, and the returned error is the errors.Join of one *BatchError per
// failing index (nil when every permutation planned). With WithPlanCache,
// each permutation is first looked up in the fingerprint cache.
func (p *Planner) RouteBatch(pis [][]int) ([]*Plan, error) {
	plans, _, err := p.RouteBatchCached(pis)
	return plans, err
}

// RouteBatchCached is RouteBatch plus per-index cache attribution: cached[i]
// reports whether plans[i] was answered from the fingerprint plan cache
// (always false without WithPlanCache). It is the primitive the serving
// layer batches onto, where hit/miss visibility is part of the response.
func (p *Planner) RouteBatchCached(pis [][]int) (plans []*Plan, cached []bool, err error) {
	return p.RouteBatchContexts(nil, pis)
}

// RouteBatchContexts is RouteBatchCached with one context per entry, so a
// batch assembled from independent requests (the serving layer's micro-batch
// queue) keeps per-request cancellation and trace-span attribution: entry
// i's cache lookup and planning phases are recorded on ctxs[i]'s span.
// ctxs may be nil (every entry runs under context.Background()) or must
// match pis in length; individual nil entries also fall back to Background.
func (p *Planner) RouteBatchContexts(ctxs []context.Context, pis [][]int) (plans []*Plan, cached []bool, err error) {
	if ctxs != nil && len(ctxs) != len(pis) {
		return nil, nil, fmt.Errorf("pops: %d contexts for %d permutations", len(ctxs), len(pis))
	}
	plans = make([]*Plan, len(pis))
	cached = make([]bool, len(pis))
	errs := make([]error, len(pis))
	core.ForEach(p.par, len(pis), p.acquire, p.release, func(pl *core.Planner, i int) {
		ctx := context.Background()
		if ctxs != nil && ctxs[i] != nil {
			ctx = ctxs[i]
		}
		var planErr error
		plans[i], cached[i], planErr = p.routeOne(ctx, pl, pis[i])
		if planErr != nil {
			errs[i] = &BatchError{Index: i, Err: planErr}
		}
	})
	return plans, cached, errors.Join(errs...)
}
