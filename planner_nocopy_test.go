package pops

import (
	"math/rand"
	"testing"
)

// TestWithPlanNoCopyAliases pins the ownership contract of WithPlanNoCopy:
// by default a Plan snapshots the permutation; under the option it aliases
// the caller's slice.
func TestWithPlanNoCopyAliases(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pi := RandomPermutation(64, rng)

	p, err := NewPlanner(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Route(pi)
	if err != nil {
		t.Fatal(err)
	}
	if &plan.Pi[0] == &pi[0] {
		t.Fatal("default Plan aliases the caller's permutation")
	}
	saved := plan.Pi[0]
	pi[0], pi[1] = pi[1], pi[0]
	if plan.Pi[0] != saved {
		t.Fatal("default Plan changed when the caller's slice was mutated")
	}
	pi[0], pi[1] = pi[1], pi[0] // restore

	pn, err := NewPlanner(8, 8, WithPlanNoCopy())
	if err != nil {
		t.Fatal(err)
	}
	planNC, err := pn.Route(pi)
	if err != nil {
		t.Fatal(err)
	}
	if &planNC.Pi[0] != &pi[0] {
		t.Fatal("WithPlanNoCopy Plan does not alias the caller's permutation")
	}
	if _, err := planNC.Verify(); err != nil {
		t.Fatalf("no-copy plan fails verification: %v", err)
	}
	// d = 1 path (direct schedule) honours the option too.
	pd, err := NewPlanner(1, 16, WithPlanNoCopy())
	if err != nil {
		t.Fatal(err)
	}
	piD := RandomPermutation(16, rng)
	planD, err := pd.Route(piD)
	if err != nil {
		t.Fatal(err)
	}
	if &planD.Pi[0] != &piD[0] {
		t.Fatal("WithPlanNoCopy d=1 Plan does not alias the caller's permutation")
	}
}

// TestRouteBatchNoCopyMatchesDefault checks the option changes ownership
// only: schedules and colors are identical with and without it.
func TestRouteBatchNoCopyMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	pis := make([][]int, 8)
	for i := range pis {
		pis[i] = RandomPermutation(64, rng)
	}
	p, err := NewPlanner(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := NewPlanner(16, 4, WithPlanNoCopy())
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.RouteBatch(pis)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pn.RouteBatch(pis)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(want[i].Colors) != len(got[i].Colors) {
			t.Fatalf("plan %d: colors length differs", i)
		}
		for j := range want[i].Colors {
			if want[i].Colors[j] != got[i].Colors[j] {
				t.Fatalf("plan %d: color %d differs: %d vs %d", i, j, want[i].Colors[j], got[i].Colors[j])
			}
		}
		if want[i].SlotCount() != got[i].SlotCount() {
			t.Fatalf("plan %d: slot count differs", i)
		}
	}
}
