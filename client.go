package pops

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pops/internal/wire"
)

// The JSON wire schema of the popsserved routing service, shared with
// internal/service. ServiceClient speaks it; callers embedding pops into
// their own services can reuse the types directly.
type (
	// ServiceRouteRequest is the body of POST /route.
	ServiceRouteRequest = wire.RouteRequest
	// ServicePlan is one planned permutation of a route response. Either
	// its Error field is set or its plan fields are.
	ServicePlan = wire.PlanResult
	// ServiceRouteResponse is the body answering POST /route.
	ServiceRouteResponse = wire.RouteResponse
	// ServiceStats is the body answering GET /stats.
	ServiceStats = wire.StatsResponse
)

// ServiceClient is the Go client of a popsserved routing service (see
// cmd/popsserved and internal/service): plans are requested over HTTP/JSON
// instead of computed in-process, so many processes can share one warm
// planner fleet — its shards, micro-batches, and fingerprint plan cache.
// The zero cost of coalescing happens server-side; the client is a thin,
// concurrency-safe HTTP wrapper.
type ServiceClient struct {
	base string
	hc   *http.Client
}

// NewServiceClient returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8714"). A nil hc selects http.DefaultClient.
func NewServiceClient(baseURL string, hc *http.Client) *ServiceClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &ServiceClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Do posts one ServiceRouteRequest and returns the decoded response. It is
// the general form behind Route and RouteBatch: callers use it to select a
// strategy or ask for full schedules (IncludeSchedule).
func (c *ServiceClient) Do(ctx context.Context, req *ServiceRouteRequest) (*ServiceRouteResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("pops: encoding route request: %w", err)
	}
	var resp ServiceRouteResponse
	if err := c.post(ctx, "/route", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Route plans one permutation on POPS(d, g) with the default (Theorem 2)
// strategy. A per-permutation planning failure is returned as an error.
func (c *ServiceClient) Route(ctx context.Context, d, g int, pi []int) (*ServicePlan, error) {
	resp, err := c.Do(ctx, &ServiceRouteRequest{D: d, G: g, Pi: pi})
	if err != nil {
		return nil, err
	}
	if len(resp.Plans) != 1 {
		return nil, fmt.Errorf("pops: service returned %d plans for one permutation", len(resp.Plans))
	}
	plan := &resp.Plans[0]
	if plan.Error != "" {
		return nil, fmt.Errorf("pops: service: %s", plan.Error)
	}
	return plan, nil
}

// RouteBatch plans a batch of permutations on POPS(d, g) with the default
// strategy, returning one ServicePlan per permutation in input order.
// Per-permutation failures stay in the corresponding ServicePlan.Error,
// matching the Planner.RouteBatch contract.
func (c *ServiceClient) RouteBatch(ctx context.Context, d, g int, pis [][]int) ([]ServicePlan, error) {
	resp, err := c.Do(ctx, &ServiceRouteRequest{D: d, G: g, Pis: pis})
	if err != nil {
		return nil, err
	}
	if len(resp.Plans) != len(pis) {
		return nil, fmt.Errorf("pops: service returned %d plans for %d permutations", len(resp.Plans), len(pis))
	}
	return resp.Plans, nil
}

// Slots returns the Theorem 2 slot count the service will use for every
// permutation on POPS(d, g).
func (c *ServiceClient) Slots(ctx context.Context, d, g int) (int, error) {
	var resp wire.SlotsResponse
	if err := c.get(ctx, fmt.Sprintf("/slots?d=%d&g=%d", d, g), &resp); err != nil {
		return 0, err
	}
	return resp.Slots, nil
}

// Stats snapshots the service's shard, cache, batching, and latency
// counters.
func (c *ServiceClient) Stats(ctx context.Context) (*ServiceStats, error) {
	var resp ServiceStats
	if err := c.get(ctx, "/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz reports service liveness: nil while the service admits requests.
func (c *ServiceClient) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("pops: service health check: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pops: service unhealthy: %s", readError(resp))
	}
	return nil
}

func (c *ServiceClient) post(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.roundTrip(req, out)
}

func (c *ServiceClient) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.roundTrip(req, out)
}

func (c *ServiceClient) roundTrip(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("pops: service request %s: %w", req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pops: service %s: %s", req.URL.Path, readError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("pops: decoding service %s response: %w", req.URL.Path, err)
	}
	return nil
}

// readError summarizes a non-200 response: status plus the first line of the
// body, which the service fills with the request-level error text.
func readError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		return resp.Status
	}
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return fmt.Sprintf("%s: %s", resp.Status, msg)
}
