package pops

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pops/internal/backoff"
	"pops/internal/wire"
	"pops/internal/wirebin"
)

// The JSON wire schema of the popsserved routing service, shared with
// internal/service. ServiceClient speaks it; callers embedding pops into
// their own services can reuse the types directly.
type (
	// ServiceRouteRequest is the body of POST /route.
	ServiceRouteRequest = wire.RouteRequest
	// ServicePlan is one planned permutation of a route response. Either
	// its Error field is set or its plan fields are.
	ServicePlan = wire.PlanResult
	// ServiceRouteResponse is the body answering POST /route.
	ServiceRouteResponse = wire.RouteResponse
	// ServiceStats is the body answering GET /stats.
	ServiceStats = wire.StatsResponse
	// ServiceStreamMeta opens a POST /route/stream response.
	ServiceStreamMeta = wire.StreamMeta
	// ServiceStreamSlot is one streamed slot fragment.
	ServiceStreamSlot = wire.StreamSlot
	// ServiceStreamDone closes a successful slot stream.
	ServiceStreamDone = wire.StreamDone
)

// ServiceClient is the Go client of a popsserved routing service (see
// cmd/popsserved and internal/service): plans are requested over HTTP/JSON
// instead of computed in-process, so many processes can share one warm
// planner fleet — its shards, micro-batches, and fingerprint plan cache.
// The zero cost of coalescing happens server-side; the client is a thin,
// concurrency-safe HTTP wrapper.
type ServiceClient struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	codec ServiceCodec

	// binDown is the sticky binary-codec downgrade: set when a CodecAuto
	// request came back 406, so every later request skips the binary Accept
	// instead of renegotiating per call. It is shared (by pointer) across
	// WithRetry/WithCodec copies, so one downgrade covers the whole client.
	binDown *atomic.Bool

	// sleep and jitter are the retry pacing hooks, injectable so tests can
	// pin the backoff schedule; nil selects the real clock and the shared
	// half-to-full jitter.
	sleep  func(context.Context, time.Duration) error
	jitter func(time.Duration) time.Duration
}

// ServiceCodec selects the response codec a ServiceClient negotiates for
// /route and /route/stream. See WithCodec.
type ServiceCodec int

const (
	// CodecAuto (the default) asks for the binary framing with a JSON/NDJSON
	// fallback in the same Accept header, decodes whichever codec the server
	// chose, and downgrades the client permanently on a 406 — old servers
	// and new servers are both spoken to transparently.
	CodecAuto ServiceCodec = iota
	// CodecJSON never asks for binary: requests are byte-identical to the
	// pre-binary client, the debugging escape hatch.
	CodecJSON
	// CodecBinary requires the binary framing: a server answering in any
	// other codec is an error. Use it to pin the wire format in tests.
	CodecBinary
)

// NewServiceClient returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8714"). A nil hc selects http.DefaultClient. The client
// does not retry by default; see WithRetry.
func NewServiceClient(baseURL string, hc *http.Client) *ServiceClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &ServiceClient{base: strings.TrimRight(baseURL, "/"), hc: hc, binDown: new(atomic.Bool)}
}

// WithCodec returns a copy of the client pinned to codec. The copy shares
// the original's sticky downgrade state, so a fleet of derived clients
// renegotiates at most once.
func (c *ServiceClient) WithCodec(codec ServiceCodec) *ServiceClient {
	cp := *c
	cp.codec = codec
	return &cp
}

// acceptHeader renders the Accept header for one call ("" sends none —
// the legacy request shape). Streams name NDJSON as the fallback, unary
// calls JSON.
func (c *ServiceClient) acceptHeader(stream bool) string {
	switch {
	case c.codec == CodecJSON, c.codec == CodecAuto && c.binDown.Load():
		return ""
	case c.codec == CodecBinary:
		return wirebin.ContentType
	case stream:
		return wirebin.ContentType + ", application/x-ndjson;q=0.9"
	default:
		return wirebin.ContentType + ", application/json;q=0.9"
	}
}

// errNotAcceptable marks a 406 verdict so the auto codec can downgrade.
var errNotAcceptable = errors.New("server rejected the requested codec")

// RetryPolicy tunes the client's reaction to overload verdicts (HTTP 429,
// or 503 carrying Retry-After): how many times to retry and how to pace.
// Planning is pure — replaying a route request is idempotent — so retrying
// a shed request is always safe; the policy never retries deterministic
// errors, and never retries past the request context's deadline.
type RetryPolicy struct {
	// MaxRetries is how many extra attempts follow a shed first attempt.
	// 0 disables retrying.
	MaxRetries int
	// BaseBackoff is the pause before the first retry, doubled per further
	// attempt and raised to the server's Retry-After hint when that asks
	// for longer. Default 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the pause. Default 1s.
	MaxBackoff time.Duration
}

// WithRetry returns a copy of the client that retries overload-shed
// requests under p. The zero policy disables retrying again.
func (c *ServiceClient) WithRetry(p RetryPolicy) *ServiceClient {
	cp := *c
	cp.retry = p
	return &cp
}

// withRetry runs attempt, retrying when it fails with a typed
// *OverloadError: the pause is BaseBackoff doubled per attempt, raised to
// the server's Retry-After hint, capped at MaxBackoff, and jittered into
// [d/2, d] so a shedding server is not hit by synchronized retry waves. A
// request whose context deadline cannot survive the pause is not retried —
// the overload verdict is returned as-is. Deterministic errors never retry.
func (c *ServiceClient) withRetry(ctx context.Context, attempt func() error) error {
	for try := 0; ; try++ {
		err := attempt()
		var oe *OverloadError
		if err == nil || !errors.As(err, &oe) || try >= c.retry.MaxRetries {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		base := c.retry.BaseBackoff
		if base <= 0 {
			base = 10 * time.Millisecond
		}
		max := c.retry.MaxBackoff
		if max <= 0 {
			max = time.Second
		}
		delay := backoff.Delay(base, max, try, oe.RetryAfter)
		if c.jitter != nil {
			delay = c.jitter(delay)
		} else {
			delay = backoff.Jitter(delay)
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			return err // the deadline would expire mid-pause
		}
		if err := c.pause(ctx, delay); err != nil {
			return err
		}
	}
}

func (c *ServiceClient) pause(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// OverloadFromResponse reconstructs the typed overload verdict of a shed
// HTTP response: every 429, plus 503s that carry a Retry-After hint (a
// proxy-side limit). A plain 503 — graceful shutdown — is not an overload
// and returns nil. The response body is not touched. ServiceClient applies
// it internally; the cluster proxy uses it to tell a shedding backend from
// a dead one.
func OverloadFromResponse(resp *http.Response) *OverloadError {
	throttled := resp.StatusCode == http.StatusTooManyRequests ||
		(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "")
	if !throttled {
		return nil
	}
	oe := &OverloadError{
		Tenant: resp.Header.Get(wire.HeaderTenant),
		Queue:  resp.Header.Get(wire.HeaderOverloadQueue),
	}
	if ms := resp.Header.Get(wire.HeaderRetryAfterMs); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			oe.RetryAfter = time.Duration(v) * time.Millisecond
		}
	}
	if oe.RetryAfter == 0 {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				oe.RetryAfter = time.Duration(v) * time.Second
			}
		}
	}
	return oe
}

// reqIDCtxKey carries a caller-chosen request ID through a context.
type reqIDCtxKey struct{}

// ContextWithRequestID returns a context that makes ServiceClient calls
// carry id as the X-Request-Id header, so a caller's own correlation ID
// follows the request through popsproxy and popsserved — it is echoed in
// the response header, the response's request_id field, the stream meta
// record, and both servers' GET /debug/slow breakdowns. Without it the
// serving side assigns an ID of its own.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDCtxKey{}, id)
}

// RequestIDFromContext returns the request ID attached by
// ContextWithRequestID, or "".
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDCtxKey{}).(string)
	return id
}

// Do posts one ServiceRouteRequest and returns the decoded response. It is
// the general form behind Route and RouteBatch: callers use it to select a
// strategy or ask for full schedules (IncludeSchedule).
func (c *ServiceClient) Do(ctx context.Context, req *ServiceRouteRequest) (*ServiceRouteResponse, error) {
	pb, err := marshalBody(req)
	if err != nil {
		return nil, err
	}
	defer pb.release()
	var resp ServiceRouteResponse
	if err := c.post(ctx, "/route", pb, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// bodyPool recycles request marshal buffers: the hot client path re-sends
// structurally similar bodies, so the encode buffer is reused instead of
// reallocated per call.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// pooledBody is one marshaled request body on loan from bodyPool. net/http's
// Transport closes a request body on its own schedule — possibly after
// RoundTrip has returned — so the buffer goes back to the pool only when the
// caller AND every per-attempt reader have released it; anything simpler is
// a use-after-recycle race under retries.
type pooledBody struct {
	buf  *bytes.Buffer
	refs atomic.Int32
}

// marshalBody encodes v into a pooled buffer. The caller holds one reference
// and must call release exactly once.
func marshalBody(v any) (*pooledBody, error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		bodyPool.Put(buf)
		return nil, fmt.Errorf("pops: encoding route request: %w", err)
	}
	pb := &pooledBody{buf: buf}
	pb.refs.Store(1)
	return pb, nil
}

func (p *pooledBody) len() int { return p.buf.Len() }

// attach mounts a fresh attempt body on req: a reader over the pooled bytes
// whose Close releases one reference, plus the ContentLength and GetBody
// the transport needs to avoid chunked uploads and to replay redirects.
func (p *pooledBody) attach(req *http.Request) {
	newReader := func() io.ReadCloser {
		p.refs.Add(1)
		r := &pooledBodyReader{pb: p}
		r.r.Reset(p.buf.Bytes())
		return r
	}
	req.Body = newReader()
	req.ContentLength = int64(p.buf.Len())
	req.GetBody = func() (io.ReadCloser, error) { return newReader(), nil }
}

func (p *pooledBody) release() {
	if p.refs.Add(-1) == 0 {
		buf := p.buf
		p.buf = nil
		bodyPool.Put(buf)
	}
}

type pooledBodyReader struct {
	pb     *pooledBody
	r      bytes.Reader
	closed bool
}

func (r *pooledBodyReader) Read(p []byte) (int, error) { return r.r.Read(p) }

func (r *pooledBodyReader) Close() error {
	if !r.closed {
		r.closed = true
		r.pb.release()
	}
	return nil
}

// Route plans one permutation on POPS(d, g) with the default (Theorem 2)
// strategy. A per-permutation planning failure is returned as an error.
func (c *ServiceClient) Route(ctx context.Context, d, g int, pi []int) (*ServicePlan, error) {
	return c.doOne(ctx, &ServiceRouteRequest{D: d, G: g, Pi: pi})
}

// Execute plans one workload on POPS(d, g) — the wire form of
// Planner.Execute. Permutation workloads go through the service's
// micro-batching queue; h-relation, all-to-all and one-to-all workloads are
// executed directly on the shard's planner, sharing its pooled arenas and
// plan cache. A workload planning failure is returned as an error.
func (c *ServiceClient) Execute(ctx context.Context, d, g int, w Workload) (*ServicePlan, error) {
	req, err := workloadRouteRequest(d, g, w)
	if err != nil {
		return nil, err
	}
	return c.doOne(ctx, req)
}

// doOne posts a single-plan request and unwraps its one result.
func (c *ServiceClient) doOne(ctx context.Context, req *ServiceRouteRequest) (*ServicePlan, error) {
	resp, err := c.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(resp.Plans) != 1 {
		return nil, fmt.Errorf("pops: service returned %d plans for one workload", len(resp.Plans))
	}
	plan := &resp.Plans[0]
	if plan.Error != "" {
		if u := plan.Unroutable; u != nil {
			// Reconstruct the typed verdict, so errors.As works across the
			// wire exactly as it does in-process.
			nw, err := NewNetwork(resp.D, resp.G)
			if err == nil {
				return nil, &UnroutableError{
					Net: nw, Packet: u.Packet, SrcGroup: u.SrcGroup, DstGroup: u.DstGroup,
					SeveredSrc: u.SeveredSrc, SeveredDst: u.SeveredDst,
				}
			}
		}
		return nil, fmt.Errorf("pops: service: %s", plan.Error)
	}
	return plan, nil
}

// wireFaults converts a FaultSet to its wire form; nil for an empty set, so
// fault-free requests serialize without the field.
func wireFaults(fs FaultSet) *wire.FaultSet {
	if fs.Empty() {
		return nil
	}
	out := &wire.FaultSet{Groups: fs.Groups}
	for _, c := range fs.Couplers {
		out.Couplers = append(out.Couplers, wire.Coupler{B: c.B, A: c.A})
	}
	return out
}

// workloadRouteRequest serializes a Workload into the tagged wire schema.
func workloadRouteRequest(d, g int, w Workload) (*ServiceRouteRequest, error) {
	switch w := w.(type) {
	case nil:
		return nil, ErrNilWorkload
	case permutationWorkload:
		return &ServiceRouteRequest{D: d, G: g, Pi: w.pi}, nil
	case hrelationWorkload:
		reqs := make([]wire.Request, len(w.reqs))
		for i, r := range w.reqs {
			reqs[i] = wire.Request{Src: r.Src, Dst: r.Dst}
		}
		return &ServiceRouteRequest{D: d, G: g, Workload: WorkloadHRelation, Requests: reqs}, nil
	case allToAllWorkload:
		return &ServiceRouteRequest{D: d, G: g, Workload: WorkloadAllToAll}, nil
	case oneToAllWorkload:
		return &ServiceRouteRequest{D: d, G: g, Workload: WorkloadOneToAll, Speaker: w.speaker}, nil
	case faultyWorkload:
		return &ServiceRouteRequest{D: d, G: g, Workload: WorkloadFaultyPermutation, Pi: w.pi, Faults: wireFaults(w.faults)}, nil
	default:
		return nil, fmt.Errorf("pops: unknown workload type %T", w)
	}
}

// RouteBatch plans a batch of permutations on POPS(d, g) with the default
// strategy, returning one ServicePlan per permutation in input order.
// Per-permutation failures stay in the corresponding ServicePlan.Error,
// matching the Planner.RouteBatch contract.
func (c *ServiceClient) RouteBatch(ctx context.Context, d, g int, pis [][]int) ([]ServicePlan, error) {
	resp, err := c.Do(ctx, &ServiceRouteRequest{D: d, G: g, Pis: pis})
	if err != nil {
		return nil, err
	}
	if len(resp.Plans) != len(pis) {
		return nil, fmt.Errorf("pops: service returned %d plans for %d permutations", len(resp.Plans), len(pis))
	}
	return resp.Plans, nil
}

// ServiceStream is an open POST /route/stream response: slot fragments
// decoded one NDJSON record at a time, while the server is still peeling
// later color classes. Drive it with Next and always Close it — Close
// releases the HTTP connection, and abandoning a stream early tells the
// server to stop planning.
type ServiceStream struct {
	body io.ReadCloser
	// dec decodes NDJSON streams; bdec binary-framed ones. Exactly one is
	// set, decided by the response's Content-Type.
	dec  *json.Decoder
	bdec *wirebin.Decoder
	meta ServiceStreamMeta
	done *ServiceStreamDone
	err  error
}

// RouteStream opens a slot stream for pi on POPS(d, g) with the default
// (Theorem 2) strategy. The stream's Meta is available immediately — it
// arrives before the first slot has even been computed server-side.
func (c *ServiceClient) RouteStream(ctx context.Context, d, g int, pi []int) (*ServiceStream, error) {
	return c.DoStream(ctx, &ServiceRouteRequest{D: d, G: g, Pi: pi})
}

// ExecuteStream opens a slot stream for any workload — the wire form of
// Planner.ExecuteStream. H-relation (and all-to-all) slots are flushed as
// each König factor of the request multigraph is peeled and routed, so the
// first slots arrive while the server is still factorizing. Cancelling ctx
// hangs up the connection, which cancels the server-side planning context.
func (c *ServiceClient) ExecuteStream(ctx context.Context, d, g int, w Workload) (*ServiceStream, error) {
	req, err := workloadRouteRequest(d, g, w)
	if err != nil {
		return nil, err
	}
	return c.DoStream(ctx, req)
}

// DoStream is the general streaming form: it posts req to /route/stream and
// decodes the stream's opening meta record. Callers use it to select a
// non-default strategy (whose plans are streamed as whole slots).
func (c *ServiceClient) DoStream(ctx context.Context, req *ServiceRouteRequest) (*ServiceStream, error) {
	pb, err := marshalBody(req)
	if err != nil {
		return nil, err
	}
	defer pb.release()
	// A stream shed at admission (429 before the meta record) has delivered
	// nothing, so retrying it is as safe as retrying /route. Once the stream
	// is open it is never retried — the caller may have consumed slots.
	var st *ServiceStream
	err = c.withRetry(ctx, func() error {
		var openErr error
		st, openErr = c.openStream(ctx, pb, c.acceptHeader(true))
		if errors.Is(openErr, errNotAcceptable) && c.codec == CodecAuto {
			c.binDown.Store(true)
			st, openErr = c.openStream(ctx, pb, "")
		}
		return openErr
	})
	return st, err
}

func (c *ServiceClient) openStream(ctx context.Context, pb *pooledBody, accept string) (*ServiceStream, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/route/stream", nil)
	if err != nil {
		return nil, err
	}
	pb.attach(httpReq)
	httpReq.Header.Set("Content-Type", "application/json")
	if accept != "" {
		httpReq.Header.Set("Accept", accept)
	}
	c.setCallHeaders(ctx, httpReq)
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("pops: service request /route/stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer drainClose(resp.Body)
		if resp.StatusCode == http.StatusNotAcceptable {
			return nil, fmt.Errorf("pops: service /route/stream: %w", errNotAcceptable)
		}
		if oe := OverloadFromResponse(resp); oe != nil {
			return nil, fmt.Errorf("pops: service /route/stream: %w", oe)
		}
		return nil, fmt.Errorf("pops: service /route/stream: %s", readError(resp))
	}
	if wirebin.IsContentType(resp.Header.Get("Content-Type")) {
		return openBinaryStream(resp)
	}
	if accept == wirebin.ContentType {
		drainClose(resp.Body)
		return nil, fmt.Errorf("pops: service /route/stream answered %q, want %s",
			resp.Header.Get("Content-Type"), wirebin.ContentType)
	}
	st := &ServiceStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}
	var rec wire.StreamRecord
	if err := st.dec.Decode(&rec); err != nil {
		drainClose(resp.Body)
		return nil, fmt.Errorf("pops: decoding stream meta: %w", err)
	}
	if rec.Type != "meta" || rec.Meta == nil {
		drainClose(resp.Body)
		if rec.Type == "error" {
			return nil, fmt.Errorf("pops: service: %s", rec.Error)
		}
		return nil, fmt.Errorf("pops: stream opened with %q record, want meta", rec.Type)
	}
	st.meta = *rec.Meta
	return st, nil
}

// openBinaryStream reads the opening meta frame of a binary-framed stream.
func openBinaryStream(resp *http.Response) (*ServiceStream, error) {
	st := &ServiceStream{body: resp.Body, bdec: wirebin.GetDecoder(resp.Body)}
	typ, payload, err := st.bdec.ReadFrame()
	if err != nil {
		st.releaseDecoder()
		drainClose(resp.Body)
		return nil, fmt.Errorf("pops: decoding stream meta: %w", err)
	}
	switch typ {
	case wirebin.FrameMeta:
		if err := wirebin.DecodeMeta(payload, &st.meta); err != nil {
			st.releaseDecoder()
			drainClose(resp.Body)
			return nil, fmt.Errorf("pops: decoding stream meta: %w", err)
		}
		return st, nil
	case wirebin.FrameError:
		msg, err := wirebin.DecodeError(payload)
		st.releaseDecoder()
		drainClose(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("pops: decoding stream error record: %w", err)
		}
		return nil, fmt.Errorf("pops: service: %s", msg)
	default:
		st.releaseDecoder()
		drainClose(resp.Body)
		return nil, fmt.Errorf("pops: stream opened with frame type %d, want meta", typ)
	}
}

// Meta returns the stream's opening record.
func (s *ServiceStream) Meta() ServiceStreamMeta { return s.meta }

// Next returns the next slot fragment, or (nil, nil) once the stream has
// completed successfully (Done then holds the closing record). A planning
// failure mid-stream or a malformed response is returned as an error.
func (s *ServiceStream) Next() (*ServiceStreamSlot, error) {
	if s.err != nil || s.done != nil {
		return nil, s.err
	}
	if s.bdec != nil {
		return s.nextBinary()
	}
	var rec wire.StreamRecord
	if err := s.dec.Decode(&rec); err != nil {
		s.err = fmt.Errorf("pops: decoding stream record: %w", err)
		return nil, s.err
	}
	switch rec.Type {
	case "slot":
		if rec.Slot == nil {
			s.err = fmt.Errorf("pops: slot record without slot payload")
			return nil, s.err
		}
		return rec.Slot, nil
	case "done":
		s.done = rec.Done
		return nil, nil
	case "error":
		s.err = fmt.Errorf("pops: service: %s", rec.Error)
		return nil, s.err
	default:
		s.err = fmt.Errorf("pops: unexpected stream record %q", rec.Type)
		return nil, s.err
	}
}

// nextBinary is Next over a binary-framed stream. A truncated or corrupt
// frame — a backend dying mid-stream, a relay forwarding garbage — is a
// typed error, never a silently short plan: the done frame is the only
// successful ending.
func (s *ServiceStream) nextBinary() (*ServiceStreamSlot, error) {
	typ, payload, err := s.bdec.ReadFrame()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // EOF before the done frame is truncation
		}
		s.err = fmt.Errorf("pops: decoding stream record: %w", err)
		return nil, s.err
	}
	switch typ {
	case wirebin.FrameSlot:
		// Decoded into a fresh record: callers accumulate fragments across
		// Next calls, so the slices must not alias the decoder's buffer.
		var slot ServiceStreamSlot
		if err := wirebin.DecodeSlot(payload, &slot); err != nil {
			s.err = fmt.Errorf("pops: decoding stream record: %w", err)
			return nil, s.err
		}
		return &slot, nil
	case wirebin.FrameDone:
		var done ServiceStreamDone
		if err := wirebin.DecodeDone(payload, &done); err != nil {
			s.err = fmt.Errorf("pops: decoding stream record: %w", err)
			return nil, s.err
		}
		s.done = &done
		return nil, nil
	case wirebin.FrameError:
		msg, err := wirebin.DecodeError(payload)
		if err != nil {
			s.err = fmt.Errorf("pops: decoding stream error record: %w", err)
			return nil, s.err
		}
		s.err = fmt.Errorf("pops: service: %s", msg)
		return nil, s.err
	default:
		s.err = fmt.Errorf("pops: unexpected stream frame type %d", typ)
		return nil, s.err
	}
}

// releaseDecoder returns the binary decoder to its pool (idempotent).
func (s *ServiceStream) releaseDecoder() {
	if s.bdec != nil {
		wirebin.PutDecoder(s.bdec)
		s.bdec = nil
	}
}

// Done returns the stream's closing record once Next has returned (nil, nil).
func (s *ServiceStream) Done() *ServiceStreamDone { return s.done }

// Close releases the underlying HTTP response. Always call it; closing
// before the done record abandons the stream server-side (the dropped
// connection is the cancellation signal). After a completed stream the
// remaining body (the chunked trailer) is drained first, so the
// keep-alive connection returns to the transport's pool instead of being
// torn down.
func (s *ServiceStream) Close() error {
	s.releaseDecoder()
	if s.done != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(s.body, 4096))
	}
	return s.body.Close()
}

// Slots returns the Theorem 2 slot count the service will use for every
// permutation on POPS(d, g).
func (c *ServiceClient) Slots(ctx context.Context, d, g int) (int, error) {
	var resp wire.SlotsResponse
	if err := c.get(ctx, fmt.Sprintf("/slots?d=%d&g=%d", d, g), &resp); err != nil {
		return 0, err
	}
	return resp.Slots, nil
}

// Stats snapshots the service's shard, cache, batching, and latency
// counters.
func (c *ServiceClient) Stats(ctx context.Context) (*ServiceStats, error) {
	var resp ServiceStats
	if err := c.get(ctx, "/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz reports service liveness: nil while the service admits requests.
func (c *ServiceClient) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("pops: service health check: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pops: service unhealthy: %s", readError(resp))
	}
	return nil
}

func (c *ServiceClient) post(ctx context.Context, path string, pb *pooledBody, out any) error {
	// The request is rebuilt per attempt — a body reader cannot be rewound
	// once the transport has consumed it.
	return c.withRetry(ctx, func() error {
		attempt := func(accept string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, nil)
			if err != nil {
				return err
			}
			pb.attach(req)
			req.Header.Set("Content-Type", "application/json")
			if accept != "" {
				req.Header.Set("Accept", accept)
			}
			c.setCallHeaders(ctx, req)
			return c.roundTrip(req, out)
		}
		err := attempt(c.acceptHeader(false))
		if errors.Is(err, errNotAcceptable) && c.codec == CodecAuto {
			// The server refused the binary offer outright: downgrade this
			// client permanently and replay the attempt as plain JSON.
			c.binDown.Store(true)
			return attempt("")
		}
		return err
	})
}

// setCallHeaders attaches the per-call context headers: the caller's
// correlation ID, the tenant tag for weighted-fair admission, and the
// absolute deadline, so a server can shed a queued request the moment it
// becomes unservable instead of planning for a caller that already hung up.
func (c *ServiceClient) setCallHeaders(ctx context.Context, req *http.Request) {
	if id := RequestIDFromContext(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	if t := TenantFromContext(ctx); t != "" {
		req.Header.Set(wire.HeaderTenant, t)
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(wire.HeaderDeadline, wire.EncodeDeadline(dl))
	}
}

func (c *ServiceClient) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.roundTrip(req, out)
}

func (c *ServiceClient) roundTrip(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("pops: service request %s: %w", req.URL.Path, err)
	}
	// Every exit drains the remaining body (bounded) before closing: a body
	// closed with bytes left tears the keep-alive connection down, so error
	// paths — non-2xx answers, truncated JSON — would otherwise leak pooled
	// connections exactly when a failover layer is retrying hardest.
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotAcceptable {
		return fmt.Errorf("pops: service %s: %w", req.URL.Path, errNotAcceptable)
	}
	if resp.StatusCode != http.StatusOK {
		if oe := OverloadFromResponse(resp); oe != nil {
			return fmt.Errorf("pops: service %s: %w", req.URL.Path, oe)
		}
		return fmt.Errorf("pops: service %s: %s", req.URL.Path, readError(resp))
	}
	if wirebin.IsContentType(resp.Header.Get("Content-Type")) {
		rr, ok := out.(*ServiceRouteResponse)
		if !ok {
			return fmt.Errorf("pops: service %s answered %s unexpectedly", req.URL.Path, wirebin.ContentType)
		}
		dec := wirebin.GetDecoder(resp.Body)
		defer wirebin.PutDecoder(dec)
		typ, payload, err := dec.ReadFrame()
		if err == nil && typ != wirebin.FrameResponse {
			err = fmt.Errorf("frame type %d, want response", typ)
		}
		if err == nil {
			err = wirebin.DecodeResponse(payload, rr)
		}
		if err != nil {
			return fmt.Errorf("pops: decoding service %s response: %w", req.URL.Path, err)
		}
		return nil
	}
	if req.Header.Get("Accept") == wirebin.ContentType {
		// CodecBinary pins the wire format; a JSON answer means the server
		// ignored the only acceptable codec.
		return fmt.Errorf("pops: service %s answered %q, want %s",
			req.URL.Path, resp.Header.Get("Content-Type"), wirebin.ContentType)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("pops: decoding service %s response: %w", req.URL.Path, err)
	}
	return nil
}

// drainClose discards what is left of a response body (bounded, so a huge
// error page cannot stall the caller) and closes it, returning the
// keep-alive connection to the transport's pool instead of tearing it down.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	body.Close()
}

// readError summarizes a non-200 response: status plus the first line of the
// body, which the service fills with the request-level error text.
func readError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		return resp.Status
	}
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return fmt.Sprintf("%s: %s", resp.Status, msg)
}
