package pops

import (
	"fmt"

	"pops/internal/core"
	"pops/internal/greedy"
	"pops/internal/singleslot"
)

// Router is a permutation-routing strategy bound to one POPS(d, g) network.
// All strategies of the paper and its related work implement it — the
// Theorem 2 relay router, the greedy and optimal direct (relay-free)
// baselines, the Gravenstreter–Melhem single-slot router, and the Auto
// router that picks the cheapest applicable strategy per permutation — so
// they can be compared, swapped, and tabulated on equal footing.
//
// Routers are stateless and safe for concurrent use. For high-throughput
// planning of many permutations, use a Planner, which amortizes internal
// allocations across calls.
type Router interface {
	// Name returns the canonical strategy name ("theorem2", "greedy",
	// "direct-optimal", "singleslot", "auto").
	Name() string
	// PredictedSlots returns the number of slots Route would use for pi
	// without building the schedule, or an error if the strategy does not
	// apply to pi (e.g. SingleSlot on a non-single-slot-routable
	// permutation).
	PredictedSlots(pi []int) (int, error)
	// Route plans pi. Plan.Strategy records the strategy that produced the
	// schedule.
	Route(pi []int) (*Plan, error)
}

// Canonical strategy names, usable with NewRouter. StrategyHRelation and
// StrategyOneToAll are not routers: they name the workload planners behind
// Execute's HRelation/AllToAll and OneToAll kinds in Plan.Strategy.
const (
	StrategyTheoremTwo    = core.StrategyTheoremTwo
	StrategyGreedy        = core.StrategyGreedy
	StrategyDirectOptimal = core.StrategyDirectOptimal
	StrategySingleSlot    = core.StrategySingleSlot
	StrategyAuto          = core.StrategyAuto
	StrategyHRelation     = core.StrategyHRelation
	StrategyOneToAll      = core.StrategyOneToAll
)

// Strategies lists the canonical strategy names accepted by NewRouter, in
// presentation order.
func Strategies() []string {
	return []string{StrategyTheoremTwo, StrategyGreedy, StrategyDirectOptimal, StrategySingleSlot, StrategyAuto}
}

// NewRouter builds the named routing strategy on POPS(d, g). It accepts the
// canonical names of Strategies plus the shorthand "direct" for
// "direct-optimal".
func NewRouter(strategy string, d, g int, opts ...Option) (Router, error) {
	switch strategy {
	case StrategyTheoremTwo:
		return NewTheoremTwo(d, g, opts...)
	case StrategyGreedy:
		return NewGreedy(d, g, opts...)
	case StrategyDirectOptimal, "direct":
		return NewDirectOptimal(d, g, opts...)
	case StrategySingleSlot:
		return NewSingleSlot(d, g, opts...)
	case StrategyAuto:
		return NewAuto(d, g, opts...)
	default:
		return nil, fmt.Errorf("pops: unknown routing strategy %q (want one of %v)", strategy, Strategies())
	}
}

// AllRouters returns one Router per strategy on POPS(d, g), in the order of
// Strategies — the strategy table used by experiments and CLIs.
func AllRouters(d, g int, opts ...Option) ([]Router, error) {
	names := Strategies()
	routers := make([]Router, 0, len(names))
	for _, name := range names {
		r, err := NewRouter(name, d, g, opts...)
		if err != nil {
			return nil, err
		}
		routers = append(routers, r)
	}
	return routers, nil
}

// Compile-time checks that every strategy implements Router.
var (
	_ Router = (*TheoremTwo)(nil)
	_ Router = (*Greedy)(nil)
	_ Router = (*DirectOptimal)(nil)
	_ Router = (*SingleSlot)(nil)
	_ Router = (*Auto)(nil)
)

// routerBase carries the validated network and resolved options shared by
// every strategy implementation.
type routerBase struct {
	nw   Network
	opts Options
}

func newRouterBase(d, g int, opts []Option) (routerBase, error) {
	nw, err := NewNetwork(d, g)
	if err != nil {
		return routerBase{}, err
	}
	return routerBase{nw: nw, opts: NewOptions(opts...)}, nil
}

// Network returns the router's POPS(d, g) shape.
func (b routerBase) Network() Network { return b.nw }

func (b routerBase) checkPerm(pi []int) error {
	if len(pi) != b.nw.N() {
		return fmt.Errorf("pops: permutation has length %d, want n = %d", len(pi), b.nw.N())
	}
	return ValidatePermutation(pi)
}

// finish applies the WithVerify option to plans whose construction does not
// verify on its own (the core planner already honors Options.Verify).
func (b routerBase) finish(plan *Plan) (*Plan, error) {
	if b.opts.Verify {
		if _, err := plan.Verify(); err != nil {
			return nil, fmt.Errorf("pops: %s schedule failed verification: %w", plan.Strategy, err)
		}
	}
	return plan, nil
}

// TheoremTwo is the paper's universal router: any permutation in exactly
// OptimalSlots(d, g) slots via one round-trip through relay groups chosen by
// balanced bipartite edge coloring.
type TheoremTwo struct{ routerBase }

// NewTheoremTwo builds the Theorem 2 router on POPS(d, g).
func NewTheoremTwo(d, g int, opts ...Option) (*TheoremTwo, error) {
	base, err := newRouterBase(d, g, opts)
	if err != nil {
		return nil, err
	}
	return &TheoremTwo{base}, nil
}

// Name implements Router.
func (r *TheoremTwo) Name() string { return StrategyTheoremTwo }

// PredictedSlots implements Router: always OptimalSlots(d, g), for every
// permutation — that is the theorem.
func (r *TheoremTwo) PredictedSlots(pi []int) (int, error) {
	if err := r.checkPerm(pi); err != nil {
		return 0, err
	}
	return OptimalSlots(r.nw.D, r.nw.G), nil
}

// Route implements Router.
func (r *TheoremTwo) Route(pi []int) (*Plan, error) {
	return core.PlanRoute(r.nw.D, r.nw.G, pi, r.opts)
}

// Greedy is the direct-routing baseline: no relays, each slot packs a
// maximal conflict-free subset of the remaining packets. Adversarial
// permutations serialize it on a single coupler (d slots vs 2⌈d/g⌉).
type Greedy struct{ routerBase }

// NewGreedy builds the greedy direct router on POPS(d, g).
func NewGreedy(d, g int, opts ...Option) (*Greedy, error) {
	base, err := newRouterBase(d, g, opts)
	if err != nil {
		return nil, err
	}
	return &Greedy{base}, nil
}

// Name implements Router.
func (r *Greedy) Name() string { return StrategyGreedy }

// PredictedSlots implements Router. Greedy's slot count is behavioral — it
// depends on the packing order — so prediction runs the packing loop itself
// and costs as much as Route without producing the schedule.
func (r *Greedy) PredictedSlots(pi []int) (int, error) {
	res, err := greedy.Route(r.nw.D, r.nw.G, pi)
	if err != nil {
		return 0, err
	}
	return res.Slots, nil
}

// Route implements Router.
func (r *Greedy) Route(pi []int) (*Plan, error) {
	res, err := greedy.Route(r.nw.D, r.nw.G, pi)
	if err != nil {
		return nil, err
	}
	return r.finish(core.FromSchedule(r.nw, pi, res.Schedule, StrategyGreedy))
}

// DirectOptimal routes with direct (relay-free) transfers in the minimum
// number of slots any direct router can achieve: µmax, the maximum
// multiplicity of a (source group, destination group) pair. It recovers
// specialized results like Sahni's ⌈d/g⌉-slot matrix transpose.
type DirectOptimal struct{ routerBase }

// NewDirectOptimal builds the optimal direct router on POPS(d, g).
func NewDirectOptimal(d, g int, opts ...Option) (*DirectOptimal, error) {
	base, err := newRouterBase(d, g, opts)
	if err != nil {
		return nil, err
	}
	return &DirectOptimal{base}, nil
}

// Name implements Router.
func (r *DirectOptimal) Name() string { return StrategyDirectOptimal }

// PredictedSlots implements Router: µmax, from one counting pass over pi.
func (r *DirectOptimal) PredictedSlots(pi []int) (int, error) {
	return greedy.MaxPairMultiplicity(r.nw.D, r.nw.G, pi)
}

// Route implements Router.
func (r *DirectOptimal) Route(pi []int) (*Plan, error) {
	res, err := greedy.DirectOptimal(r.nw.D, r.nw.G, pi)
	if err != nil {
		return nil, err
	}
	return r.finish(core.FromSchedule(r.nw, pi, res.Schedule, StrategyDirectOptimal))
}

// SingleSlot is the Gravenstreter–Melhem router: one slot, applicable
// exactly when no (source group, destination group) pair carries two
// packets. Route and PredictedSlots fail on permutations outside that class.
type SingleSlot struct{ routerBase }

// NewSingleSlot builds the single-slot router on POPS(d, g).
func NewSingleSlot(d, g int, opts ...Option) (*SingleSlot, error) {
	base, err := newRouterBase(d, g, opts)
	if err != nil {
		return nil, err
	}
	return &SingleSlot{base}, nil
}

// Name implements Router.
func (r *SingleSlot) Name() string { return StrategySingleSlot }

// PredictedSlots implements Router: 1 when pi is single-slot routable, an
// error otherwise.
func (r *SingleSlot) PredictedSlots(pi []int) (int, error) {
	ok, err := singleslot.IsRoutable(r.nw.D, r.nw.G, pi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("pops: permutation is not single-slot routable on %v", r.nw)
	}
	return 1, nil
}

// Route implements Router.
func (r *SingleSlot) Route(pi []int) (*Plan, error) {
	sched, err := singleslot.Route(r.nw.D, r.nw.G, pi)
	if err != nil {
		return nil, err
	}
	return r.finish(core.FromSchedule(r.nw, pi, sched, StrategySingleSlot))
}

// Auto picks the cheapest applicable strategy per permutation: the one-slot
// router when the Gravenstreter–Melhem characterization admits pi, the
// optimal direct router when its µmax bound beats Theorem 2's 2⌈d/g⌉, and
// the universal Theorem 2 router otherwise. Its slot count therefore never
// exceeds TheoremTwo's. Plan.Strategy records the strategy actually chosen.
type Auto struct{ routerBase }

// NewAuto builds the strategy-selecting router on POPS(d, g).
func NewAuto(d, g int, opts ...Option) (*Auto, error) {
	base, err := newRouterBase(d, g, opts)
	if err != nil {
		return nil, err
	}
	return &Auto{base}, nil
}

// Name implements Router.
func (r *Auto) Name() string { return StrategyAuto }

// choose returns the strategy Auto will dispatch pi to and its slot count.
// One counting pass decides all three cases: single-slot routability
// (Gravenstreter–Melhem) is exactly µmax == 1, so the same multiplicity that
// drives the direct-optimal bound answers the one-slot check too.
func (r *Auto) choose(pi []int) (string, int, error) {
	d, g := r.nw.D, r.nw.G
	mu, err := greedy.MaxPairMultiplicity(d, g, pi)
	if err != nil {
		return "", 0, err
	}
	if mu == 1 {
		return StrategySingleSlot, 1, nil
	}
	theorem := OptimalSlots(d, g)
	if mu < theorem {
		return StrategyDirectOptimal, mu, nil
	}
	return StrategyTheoremTwo, theorem, nil
}

// PredictedSlots implements Router: min(1 if single-slot routable, µmax,
// 2⌈d/g⌉), without building a schedule.
func (r *Auto) PredictedSlots(pi []int) (int, error) {
	_, slots, err := r.choose(pi)
	return slots, err
}

// Route implements Router, dispatching to the chosen strategy. The
// classification of choose runs once: the dispatched builders reuse its
// verdict (and, for direct routing, its µmax) instead of re-deriving them.
func (r *Auto) Route(pi []int) (*Plan, error) {
	strategy, slots, err := r.choose(pi)
	if err != nil {
		return nil, err
	}
	switch strategy {
	case StrategySingleSlot:
		sched, err := singleslot.RouteRoutable(r.nw.D, r.nw.G, pi)
		if err != nil {
			return nil, err
		}
		return r.finish(core.FromSchedule(r.nw, pi, sched, StrategySingleSlot))
	case StrategyDirectOptimal:
		res, err := greedy.DirectOptimalWithMu(r.nw.D, r.nw.G, pi, slots)
		if err != nil {
			return nil, err
		}
		return r.finish(core.FromSchedule(r.nw, pi, res.Schedule, StrategyDirectOptimal))
	default:
		return core.PlanRoute(r.nw.D, r.nw.G, pi, r.opts)
	}
}
