package pops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"pops/internal/wire"
)

// countingServer wraps an httptest server and counts distinct TCP
// connections accepted, so tests can pin connection reuse: error paths that
// fail to drain response bodies tear pooled connections down, and every
// subsequent request then opens a fresh one.
func countingServer(t *testing.T, h http.Handler) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(h)
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	t.Cleanup(srv.Close)
	return srv, &conns
}

// TestServiceClientNon2xxReusesConnections drives repeated failing requests
// and asserts the client keeps reusing one pooled connection: non-2xx
// responses must be drained and closed, not abandoned mid-body.
func TestServiceClientNon2xxReusesConnections(t *testing.T) {
	srv, conns := countingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "service: synthetic failure", http.StatusBadRequest)
	}))
	client := NewServiceClient(srv.URL, &http.Client{Transport: &http.Transport{}})
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := client.Route(ctx, 4, 8, VectorReversal(32)); err == nil {
			t.Fatal("non-2xx response produced no error")
		} else if !strings.Contains(err.Error(), "synthetic failure") {
			t.Fatalf("error %v does not carry the response body", err)
		}
	}
	if got := conns.Load(); got > 2 {
		t.Fatalf("10 failing round-trips opened %d connections; bodies are not being drained", got)
	}
}

// TestServiceClientDecodeFailureReusesConnections covers the other
// round-trip error path: a 200 whose body is not the expected JSON must
// still leave the connection reusable.
func TestServiceClientDecodeFailureReusesConnections(t *testing.T) {
	srv, conns := countingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"plans": "not-an-array"}`)
	}))
	client := NewServiceClient(srv.URL, &http.Client{Transport: &http.Transport{}})
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := client.Route(ctx, 4, 8, VectorReversal(32)); err == nil {
			t.Fatal("malformed response body produced no error")
		}
	}
	if got := conns.Load(); got > 2 {
		t.Fatalf("10 decode failures opened %d connections; bodies are not being drained", got)
	}
}

// TestServiceClientStreamNon2xx pins that a refused stream surfaces the
// server's error text and keeps the connection pool healthy.
func TestServiceClientStreamNon2xx(t *testing.T) {
	srv, conns := countingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "service: stream refused", http.StatusServiceUnavailable)
	}))
	client := NewServiceClient(srv.URL, &http.Client{Transport: &http.Transport{}})
	for i := 0; i < 5; i++ {
		_, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
		if err == nil || !strings.Contains(err.Error(), "stream refused") {
			t.Fatalf("refused stream error = %v", err)
		}
	}
	if got := conns.Load(); got > 2 {
		t.Fatalf("5 refused streams opened %d connections; bodies are not being drained", got)
	}
}

// streamHandler writes the given NDJSON records (any strings), flushing
// each, then optionally hangs up the TCP connection without finishing the
// response.
func streamHandler(records []string, hangup bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		for _, rec := range records {
			fmt.Fprintln(w, rec)
			fl.Flush()
		}
		if hangup {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
		}
	})
}

func metaRecord(t *testing.T, fragments int) string {
	t.Helper()
	rec, err := json.Marshal(wire.StreamRecord{Type: "meta", Meta: &wire.StreamMeta{
		D: 4, G: 8, Slots: 2, Fragments: fragments, Strategy: "theorem2",
	}})
	if err != nil {
		t.Fatal(err)
	}
	return string(rec)
}

func slotRecord(t *testing.T, slot int) string {
	t.Helper()
	rec, err := json.Marshal(wire.StreamRecord{Type: "slot", Slot: &wire.StreamSlot{Slot: slot}})
	if err != nil {
		t.Fatal(err)
	}
	return string(rec)
}

// TestServiceClientMalformedMidStream pins that garbage between valid
// NDJSON records surfaces as an error from Next — never a silently
// truncated plan.
func TestServiceClientMalformedMidStream(t *testing.T) {
	srv := httptest.NewServer(streamHandler([]string{
		metaRecord(t, 8), slotRecord(t, 0), "{not json", slotRecord(t, 1),
	}, false))
	t.Cleanup(srv.Close)
	client := NewServiceClient(srv.URL, nil)

	st, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec, err := st.Next(); err != nil || rec == nil {
		t.Fatalf("first slot: %v %v", rec, err)
	}
	if _, err := st.Next(); err == nil {
		t.Fatal("malformed record mid-stream produced no error")
	}
	if st.Done() != nil {
		t.Fatal("broken stream reported a done record")
	}
	// The error is sticky: further Next calls keep failing.
	if _, err := st.Next(); err == nil {
		t.Fatal("stream error was not sticky")
	}
}

// TestServiceClientHangupMidStream pins that a backend dying mid-stream —
// connection torn down before the done record — surfaces as an error, not
// as a short plan that looks complete.
func TestServiceClientHangupMidStream(t *testing.T) {
	srv := httptest.NewServer(streamHandler([]string{
		metaRecord(t, 8), slotRecord(t, 0), slotRecord(t, 1),
	}, true))
	t.Cleanup(srv.Close)
	client := NewServiceClient(srv.URL, nil)

	st, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := 0
	for {
		rec, err := st.Next()
		if err != nil {
			break // the hang-up must arrive as an error…
		}
		if rec == nil {
			t.Fatalf("stream ended cleanly after %d of 8 promised fragments", got)
		}
		got++
		if got > 8 {
			t.Fatal("more fragments than promised")
		}
	}
	if got != 2 {
		t.Fatalf("delivered %d fragments before the hang-up, want 2", got)
	}
	if st.Done() != nil {
		t.Fatal("hung-up stream reported a done record")
	}
}

// TestServiceClientErrorRecordMidStream pins the in-band failure path: an
// "error" record surfaces through Next with the server's message.
func TestServiceClientErrorRecordMidStream(t *testing.T) {
	errRec, err := json.Marshal(wire.StreamRecord{Type: "error", Error: "planning exploded"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(streamHandler([]string{
		metaRecord(t, 8), slotRecord(t, 0), string(errRec),
	}, false))
	t.Cleanup(srv.Close)
	client := NewServiceClient(srv.URL, nil)

	st, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec, err := st.Next(); err != nil || rec == nil {
		t.Fatalf("first slot: %v %v", rec, err)
	}
	_, err = st.Next()
	if err == nil || !strings.Contains(err.Error(), "planning exploded") {
		t.Fatalf("error record surfaced as %v", err)
	}
}
