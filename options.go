package pops

// Option is a functional option configuring routers and planners. Options
// apply to the shared Options struct that is threaded down into the planning
// layers (internal/core, internal/hrelation).
type Option func(*Options)

// WithAlgorithm selects the bipartite edge-coloring backend used by the
// Theorem 2 planner (the computational bottleneck named in Remark 1 of the
// paper). The default is EulerSplitDC.
func WithAlgorithm(a Algorithm) Option {
	return func(o *Options) { o.Algorithm = a }
}

// WithVerify makes every produced schedule get replayed on the slot-level
// simulator before it is returned; a simulation failure becomes a planning
// error. Off by default: the construction is proven correct, and planners
// re-check the paper's fair-distribution invariants in any case.
func WithVerify(v bool) Option {
	return func(o *Options) { o.Verify = v }
}

// WithParallelism bounds the worker pools of batch operations: the Planner's
// RouteBatch and the per-factor routing of h-relations. n < 1 selects the
// default, GOMAXPROCS. Single-permutation planning is unaffected.
func WithParallelism(n int) Option {
	return func(o *Options) { o.Parallelism = n }
}

// NewOptions resolves functional options into the Options struct accepted by
// the lower-level constructors (mesh.New, hypercube.New, matmul.Multiply and
// the internal planners).
func NewOptions(opts ...Option) Options {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	return o
}
