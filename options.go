package pops

// Option is a functional option configuring routers and planners. Options
// apply to the shared Options struct that is threaded down into the planning
// layers (internal/core, internal/hrelation).
type Option func(*Options)

// WithAlgorithm selects the bipartite edge-coloring backend used by the
// Theorem 2 planner (the computational bottleneck named in Remark 1 of the
// paper). The default is RepeatedMatching (the Algorithm zero value).
func WithAlgorithm(a Algorithm) Option {
	return func(o *Options) { o.Algorithm = a }
}

// WithVerify makes every produced schedule get replayed on the slot-level
// simulator before it is returned; a simulation failure becomes a planning
// error. Off by default: the construction is proven correct, and planners
// re-check the paper's fair-distribution invariants in any case.
func WithVerify(v bool) Option {
	return func(o *Options) { o.Verify = v }
}

// WithParallelism bounds the worker pools of batch operations: the Planner's
// RouteBatch and the per-factor routing of h-relations. n < 1 selects the
// default, GOMAXPROCS. Single-permutation planning is unaffected.
func WithParallelism(n int) Option {
	return func(o *Options) { o.Parallelism = n }
}

// WithPlanNoCopy makes Theorem 2 Plans alias the caller's permutation slice
// instead of copying it into the Plan. By default every Plan owns all memory
// it references, so callers may freely reuse their pi buffers; with this
// option that one O(n) defensive copy per plan is skipped.
//
// Ownership contract: the caller must keep the permutation slice alive and
// unmodified for as long as the Plan is used — Plan.Pi, Plan.Verify and the
// simulator replay all read it. Reusing a request buffer across Route calls
// while earlier Plans are still live is a data race under this option. Batch
// callers whose permutations are immutable for the batch lifetime (the
// intended use) get measurably lower planning overhead; see the BENCH notes.
func WithPlanNoCopy() Option {
	return func(o *Options) { o.PlanNoCopy = true }
}

// WithPlanCache gives the Planner a fingerprint-keyed plan cache of at most
// n entries (LRU eviction): a permutation already planned on this Planner is
// answered from the cache instead of replanned. Keys are
// PermutationFingerprint digests, and every hit re-verifies permutation
// equality before the memoized plan is returned, so a 64-bit collision can
// cost a miss but never yield a wrong plan. Cached plans are shared between
// callers and must be treated as immutable; combined with WithPlanNoCopy
// this extends the ownership contract — a cached plan's aliased permutation
// must stay unmodified for the cache's lifetime, not just the plan's.
// n < 1 disables caching (the default). Hit/miss/eviction counters are
// exposed through Planner.CacheStats.
func WithPlanCache(n int) Option {
	return func(o *Options) { o.PlanCache = n }
}

// WithPlanObserver installs o as the planner's plan observer: every
// completed Route/Execute/stream invokes o.ObservePlan with the resolved
// strategy, whether the plan came from the fingerprint cache, and how long
// the call took (for cache hits, the lookup time). The observer must be safe
// for concurrent use and should not block — it runs inline on the planning
// path. nil (the default) observes nothing.
func WithPlanObserver(o PlanObserver) Option {
	return func(opts *Options) { opts.Observer = o }
}

// NewOptions resolves functional options into the Options struct accepted by
// the lower-level constructors (mesh.New, hypercube.New, matmul.Multiply and
// the internal planners).
func NewOptions(opts ...Option) Options {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	return o
}
