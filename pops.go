// Package pops is the public API of the POPS permutation-routing library, a
// full reproduction of Mei & Rizzi, "Routing Permutations in Partitioned
// Optical Passive Stars Networks" (IPPS 2002).
//
// A POPS(d, g) network connects n = d·g processors, partitioned into g
// groups of d, through g² optical passive star couplers. The central result
// (Theorem 2) is that any permutation π of the n processors can be routed in
// one slot when d = 1 and 2·⌈d/g⌉ slots when d > 1 — worst-case optimal,
// and within a factor two of optimal for every fixed-point-free permutation.
//
// Quick start — hold a Planner per network shape and Execute workloads on
// it:
//
//	p, err := pops.NewPlanner(8, 8)  // POPS(8,8), n = 64
//	pi := pops.RandomPermutation(64, rng)
//	plan, err := p.Execute(ctx, pops.Permutation(pi))
//	// plan.SlotCount() == 2 == pops.OptimalSlots(8, 8)
//	trace, err := plan.Verify()      // replay on the slot-level simulator
//
// Workloads are the unit of planning: Permutation(pi) is the paper's
// Theorem 2 problem, HRelation(reqs) its h-relation generalization,
// AllToAll() the complete exchange, and OneToAll(speaker) the one-slot
// broadcast. All four run through the same pair of context-aware methods —
// Planner.Execute for a finished *Plan, Planner.ExecuteStream for slot
// fragments delivered while the König factorization is still peeling later
// factors (time-to-first-slot is a small fraction of the full planning
// latency). Cancelling the context stops planning between factors and
// returns the pooled worker.
//
// Every routing strategy — Theorem 2 (TheoremTwo), the greedy and optimal
// direct baselines (Greedy, DirectOptimal), the Gravenstreter–Melhem
// single-slot router (SingleSlot), and the per-permutation strategy selector
// (Auto) — implements the Router interface and returns the unified *Plan,
// whose Strategy field records the producer:
//
//	r, err := pops.NewAuto(8, 8)
//	plan, err := r.Route(pi) // plan.Strategy == "singleslot" | "direct-optimal" | "theorem2"
//
// Behavior is configured with functional options (WithAlgorithm, WithVerify,
// WithParallelism). For planning batches of permutations, RouteBatch fans
// a bounded worker pool over the planner's pooled per-worker arenas:
//
//	p, err := pops.NewPlanner(8, 8, pops.WithParallelism(4))
//	plans, err := p.RouteBatch(pis) // order-stable, bounded worker pool
//
// WithPlanCache adds a workload-fingerprint plan cache to a Planner, and the
// same planning surface is served over HTTP by cmd/popsserved (sharded per
// network shape, micro-batched); ServiceClient is its Go client
// (Execute/ExecuteStream mirror the Planner methods over the wire, with
// POST /route/stream flushing slot records as chunked NDJSON).
//
// The facade additionally re-exports the building blocks: the slot-level
// network simulator (Network, Schedule, Run), the Theorem 1 machinery (fair
// distributions via balanced bipartite edge coloring), permutation families
// from the related literature (BPC, mesh shifts, hypercube exchanges,
// reversal, transpose), and the lower bounds of Propositions 1–3. The
// superseded free functions (Route, RouteHRelation, RouteAllToAll, the
// legacy GreedyRoute/DirectOptimalRoute/OneSlotRoute) remain as thin
// deprecated wrappers over the Execute surface.
package pops

import (
	"context"
	"math/rand"

	"pops/internal/bounds"
	"pops/internal/core"
	"pops/internal/edgecolor"
	"pops/internal/hrelation"
	"pops/internal/perms"
	"pops/internal/popsnet"
	"pops/internal/singleslot"
)

// Algorithm selects the bipartite edge-coloring backend used by the planner
// (the computational bottleneck named in Remark 1 of the paper).
type Algorithm = edgecolor.Algorithm

// Available coloring backends.
const (
	// RepeatedMatching extracts perfect matchings with Hopcroft–Karp
	// (the default: it is the Algorithm zero value).
	RepeatedMatching = edgecolor.RepeatedMatching
	// EulerSplitDC is the near-linear Euler-split divide and conquer.
	EulerSplitDC = edgecolor.EulerSplitDC
	// Insertion is the O(n·m) alternating-path König coloring.
	Insertion = edgecolor.Insertion
)

// Options configures the planner.
type Options = core.Options

// PlanObserver receives one observation per planned workload: resolved
// strategy, cache verdict, and measured planning time. Install one with
// WithPlanObserver; the routing service uses it to feed the per-(d, g,
// strategy) plan-time telemetry behind /stats and /metrics.
type PlanObserver = core.PlanObserver

// Plan is a verified-constructible routing plan; see Route.
type Plan = core.Plan

// Network describes a POPS(d, g) network shape.
type Network = popsnet.Network

// Schedule is a sequence of communication slots on a network.
type Schedule = popsnet.Schedule

// Trace records per-slot statistics of a simulated execution.
type Trace = popsnet.Trace

// NewNetwork validates a POPS(d, g) shape.
func NewNetwork(d, g int) (Network, error) { return popsnet.NewNetwork(d, g) }

// Route plans the Theorem 2 routing of pi on POPS(d, g). The schedule uses
// exactly OptimalSlots(d, g) slots and can be replayed with plan.Verify.
//
// Deprecated: hold a Planner and use Execute with a Permutation workload —
// it reuses pooled arenas across calls and carries a context. Route remains
// a thin wrapper over it and returns byte-identical plans.
func Route(d, g int, pi []int, opts ...Option) (*Plan, error) {
	p, err := NewPlanner(d, g, opts...)
	if err != nil {
		return nil, err
	}
	return p.Execute(context.Background(), Permutation(pi))
}

// RouteWith is Route with an explicit options struct.
//
// Deprecated: use Route with functional options (WithAlgorithm, WithVerify).
func RouteWith(d, g int, pi []int, opts Options) (*Plan, error) {
	return core.PlanRoute(d, g, pi, opts)
}

// OptimalSlots returns Theorem 2's slot count: 1 when d = 1, else 2⌈d/g⌉.
func OptimalSlots(d, g int) int { return core.OptimalSlots(d, g) }

// LowerBound returns the strongest applicable lower bound of Propositions
// 1–3 on the slots needed to route pi on POPS(d, g), with the name of the
// proposition supplying it ("Prop1", "Prop2", "Prop3", or "none").
func LowerBound(d, g int, pi []int) (int, string, error) {
	return bounds.LowerBound(d, g, pi)
}

// Run replays a schedule on the slot-level simulator from the canonical
// initial state (packet p at processor p).
func Run(s *Schedule) (*Trace, error) {
	_, tr, err := popsnet.Run(s)
	return tr, err
}

// BroadcastSchedule returns the paper's one-slot broadcast schedule from
// the given speaker processor.
//
// Deprecated: use Execute with a OneToAll workload, whose Plan carries the
// same schedule plus the broadcast Verify contract.
func BroadcastSchedule(nw Network, speaker int) (*Schedule, error) {
	return popsnet.OneToAll(nw, speaker, speaker)
}

// GreedyRoute runs the direct-routing baseline (no relays, maximal
// conflict-free packing per slot) and returns its schedule and slot count.
//
// Deprecated: use NewGreedy, whose Route returns the unified *Plan.
func GreedyRoute(d, g int, pi []int) (*Schedule, int, error) {
	return routeViaRouter(StrategyGreedy, d, g, pi)
}

// DirectOptimalRoute routes pi with direct (relay-free) transfers in the
// minimum number of slots any direct router can achieve: the maximum
// multiplicity of a (source group, destination group) pair. It recovers
// specialized results like Sahni's ⌈d/g⌉-slot matrix transpose.
//
// Deprecated: use NewDirectOptimal, whose Route returns the unified *Plan.
func DirectOptimalRoute(d, g int, pi []int) (*Schedule, int, error) {
	return routeViaRouter(StrategyDirectOptimal, d, g, pi)
}

// routeViaRouter adapts the Router surface to the legacy (schedule, slots)
// return shape of the deprecated free functions.
func routeViaRouter(strategy string, d, g int, pi []int) (*Schedule, int, error) {
	r, err := NewRouter(strategy, d, g)
	if err != nil {
		return nil, 0, err
	}
	plan, err := r.Route(pi)
	if err != nil {
		return nil, 0, err
	}
	return plan.Schedule(), plan.SlotCount(), nil
}

// IsOneSlotRoutable reports the Gravenstreter–Melhem characterization:
// whether pi routes in a single slot on POPS(d, g).
func IsOneSlotRoutable(d, g int, pi []int) (bool, error) {
	return singleslot.IsRoutable(d, g, pi)
}

// OneSlotRoute builds the single-slot schedule for a permutation satisfying
// IsOneSlotRoutable.
//
// Deprecated: use NewSingleSlot, whose Route returns the unified *Plan.
func OneSlotRoute(d, g int, pi []int) (*Schedule, error) {
	r, err := NewSingleSlot(d, g)
	if err != nil {
		return nil, err
	}
	plan, err := r.Route(pi)
	if err != nil {
		return nil, err
	}
	return plan.Schedule(), nil
}

// Request is one packet demand of an h-relation: move a packet from Src to
// Dst. Processors may appear in up to h requests as source and up to h as
// destination.
type Request = hrelation.Request

// HRelationPlan is the historical result shape of RouteHRelation: a view
// over the unified *Plan that Execute produces for HRelation workloads.
type HRelationPlan = hrelation.Plan

// RouteHRelation generalizes Route to h-relations: the request multigraph is
// decomposed into h permutations (König), each routed by Theorem 2, for
// h·OptimalSlots(d, g) slots in total.
//
// Deprecated: hold a Planner and use Execute with an HRelation workload —
// it reuses the pooled per-worker arenas and the plan cache, carries a
// context, and streams via ExecuteStream. RouteHRelation remains a thin
// wrapper over it with a byte-identical schedule.
func RouteHRelation(d, g int, reqs []Request, opts ...Option) (*HRelationPlan, error) {
	p, err := NewPlanner(d, g, opts...)
	if err != nil {
		return nil, err
	}
	plan, err := p.Execute(context.Background(), HRelation(reqs))
	if err != nil {
		return nil, err
	}
	return hrelation.FromCore(plan), nil
}

// HRelationSlots returns the slot cost of an h-relation plan for degree h:
// h · OptimalSlots(d, g).
func HRelationSlots(d, g, h int) int { return hrelation.PredictedSlots(d, g, h) }

// RouteAllToAll routes the complete exchange (every processor sends one
// distinct packet to every other processor) as an (n−1)-relation.
//
// Deprecated: hold a Planner and use Execute with an AllToAll workload,
// which additionally memoizes the exchange in the plan cache.
// RouteAllToAll remains a thin wrapper over it with a byte-identical
// schedule.
func RouteAllToAll(d, g int, opts ...Option) (*HRelationPlan, error) {
	p, err := NewPlanner(d, g, opts...)
	if err != nil {
		return nil, err
	}
	plan, err := p.Execute(context.Background(), AllToAll())
	if err != nil {
		return nil, err
	}
	return hrelation.FromCore(plan), nil
}

// Permutation utilities and families (package perms).

// ValidatePermutation checks that pi is a permutation of {0,…,len(pi)−1}.
func ValidatePermutation(pi []int) error { return perms.Validate(pi) }

// PermutationFingerprint returns the 64-bit content fingerprint of pi used
// as the key of the Planner's plan cache (WithPlanCache) and of the serving
// layer's request coalescing. Equal permutations always fingerprint
// identically; distinct ones collide with probability ~2⁻⁶⁴, so cache
// layers verify equality on every hit before trusting a stored plan.
func PermutationFingerprint(pi []int) uint64 { return perms.Fingerprint(pi) }

// IdentityPermutation returns the identity on n elements.
func IdentityPermutation(n int) []int { return perms.Identity(n) }

// RandomPermutation returns a uniformly random permutation.
func RandomPermutation(n int, rng *rand.Rand) []int { return perms.Random(n, rng) }

// RandomDerangement returns a random fixed-point-free permutation (n ≥ 2).
func RandomDerangement(n int, rng *rand.Rand) []int { return perms.RandomDerangement(n, rng) }

// VectorReversal returns π(i) = n−1−i.
func VectorReversal(n int) []int { return perms.VectorReversal(n) }

// Transpose returns the r×c matrix transpose permutation.
func Transpose(r, c int) []int { return perms.Transpose(r, c) }

// MeshShift returns the torus shift permutation of an rows×cols mesh.
func MeshShift(rows, cols, dr, dc int) ([]int, error) { return perms.MeshShift(rows, cols, dr, dc) }

// GroupRotation maps every packet of group h to group (h+shift) mod g — the
// adversarial instance for direct routing.
func GroupRotation(d, g, shift int) ([]int, error) { return perms.GroupRotation(d, g, shift) }

// BPC is a bit-permute-complement permutation (Sahni 2000a).
type BPC = perms.BPC

// NewBPC builds a BPC permutation descriptor.
func NewBPC(bits int, bitPerm []int, complement uint64) (*BPC, error) {
	return perms.NewBPC(bits, bitPerm, complement)
}

// HypercubeExchange returns the BPC π(i) = i ⊕ 2^bit.
func HypercubeExchange(bits, bit int) (*BPC, error) { return perms.HypercubeExchange(bits, bit) }

// BitReversal returns the bit-reversal BPC permutation.
func BitReversal(bits int) (*BPC, error) { return perms.BitReversal(bits) }
