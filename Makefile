# Development entry points. CI runs the same commands (see
# .github/workflows/ci.yml); BENCH files are recorded with `make bench`.

DATE := $(shell date +%F)

.PHONY: build test vet race bench bench-smoke alloc-guard serve-smoke

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race . ./internal/service/... ./cmd/popsserved

# End-to-end serving smoke: start popsserved on an ephemeral port, route a
# permutation through pops.ServiceClient, and assert the second call is
# answered by the fingerprint plan cache (plan flag + /stats hit counter).
# TestServeSmokeStream additionally POSTs /route/stream over raw TCP and
# asserts the slot records arrive as >= 2 separate HTTP chunks.
serve-smoke:
	go test -run 'TestServeSmoke|TestServeSmokeStream' -count=1 -v ./cmd/popsserved

# Record a BENCH_<date>.json with the benchmark set the baselines use.
# Override the output or note: make bench BENCH_OUT=BENCH_x.json BENCH_NOTE="..."
BENCH_OUT  ?= BENCH_$(DATE).json
BENCH_NOTE ?= recorded with make bench
bench:
	go run ./cmd/benchrecord -out $(BENCH_OUT) -note "$(BENCH_NOTE)"

# One-iteration benchmark pass: compile-and-run smoke, no timing value.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# The steady-state allocation guard of the coloring engine: fails if
# Factorizer/Matcher/Splitter reuse regresses past the alloc budget. The
# streaming path is covered too: a warmed Stream drain allocates nothing
# beyond its handle, and RouteStream+Collect stays within Route's budget
# plus the fixed stream handles.
alloc-guard:
	go test -run 'TestFactorizerAllocBudget|TestStreamAllocBudget|TestMatcherSteadyStateAllocFree|TestSplitterSteadyStateAllocFree' \
		-count=1 ./internal/edgecolor ./internal/matching ./internal/graph
	go test -run 'TestRouteStreamAllocBudget' -count=1 .
