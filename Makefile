# Development entry points. CI runs the same commands (see
# .github/workflows/ci.yml); BENCH files are recorded with `make bench`.

DATE := $(shell date +%F)

.PHONY: build test vet race tier1 bench bench-smoke alloc-guard serve-smoke cluster-smoke fault-smoke obs-smoke overload-smoke

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# The tier-1 gate: build, vet, test — what every change must keep green.
tier1: build vet test

race:
	go test -race . ./internal/popsnet ./internal/wirebin ./internal/service/... ./internal/cluster/... ./internal/chaos ./cmd/popsserved ./cmd/popsproxy

# End-to-end serving smoke: start popsserved on an ephemeral port, route a
# permutation through pops.ServiceClient, and assert the second call is
# answered by the fingerprint plan cache (plan flag + /stats hit counter).
# TestServeSmokeStream additionally POSTs /route/stream over raw TCP and
# asserts the slot records arrive as >= 2 separate HTTP chunks,
# TestServeSmokeStreamBinary repeats that with Accept: application/x-pops-bin
# (binary Content-Type negotiated, >= 2 chunks, frames decode to
# meta + slots + done), and TestServeSmokeStreamHRelation round-trips an
# h-relation workload through /route/stream the same way — >= 2 chunks, and
# a workload plan cache hit when the identical relation is streamed again.
serve-smoke:
	go test -run 'TestServeSmoke|TestServeSmokeStream' -count=1 -v ./cmd/popsserved

# End-to-end cluster smoke: boot three in-process popsserved backends and a
# popsproxy front door, drive a permutation trace through the unchanged
# single-node client, kill one backend mid-trace, and assert zero failed
# requests (the dead node is ejected, its keys fail over to the next ring
# owner) plus a full-trace replay answered from the owning nodes' plan
# caches. TestClusterSmokeStream repeats the exercise for /route/stream, and
# TestClusterSmokeStreamBinary pins the codec to binary end to end — the
# proxy must relay the backends' binary framing intact.
cluster-smoke:
	go test -run 'TestClusterSmoke' -count=1 -v ./cmd/popsproxy

# End-to-end fault-tolerance smoke: round-trip a FaultyPermutation workload
# through a live popsserved, verify the served schedule on the fault-injected
# simulator (full delivery, zero dead-coupler use), assert the replay is a
# cache hit and the /stats fault counters moved, and assert a dead-group
# request comes back as a typed *pops.UnroutableError across the wire.
fault-smoke:
	go test -run 'TestFaultSmoke' -count=1 -v ./cmd/popsserved

# End-to-end overload smoke: two throttled popsserved backends behind a
# popsproxy, a 4x load ramp with one backend degraded to 200ms per request.
# Asserts the robustness contract: nonzero typed sheds (429 + Retry-After),
# admitted p99 within 5x of the uncontended baseline, the slow node's
# circuit breaker opens (health checks alone cannot catch it) and re-closes
# once the slowness lifts. The shed-don't-collapse and tenant-fairness
# properties are covered in-process by ./internal/chaos.
overload-smoke:
	go test -run 'TestOverloadSmoke' -count=1 -v ./cmd/popsproxy
	go test -run 'TestOverloadShedsDontCollapse|TestTenantWeightedFairness' -count=1 -v ./internal/chaos

# End-to-end observability smoke: boot popsserved with a -debug-addr
# listener, route a permutation under a caller-chosen X-Request-Id, and
# assert the ID echoes through the client round trip, GET /metrics serves
# Prometheus text with a (d, g, strategy)-labeled plan-time series, the
# traced request lands in GET /debug/slow, and the debug listener answers
# both /metrics and net/http/pprof.
obs-smoke:
	go test -run 'TestObsSmoke' -count=1 -v ./cmd/popsserved

# Record a BENCH_<date>.json with the benchmark set the baselines use.
# Override the output or note: make bench BENCH_OUT=BENCH_x.json BENCH_NOTE="..."
BENCH_OUT  ?= BENCH_$(DATE).json
BENCH_NOTE ?= recorded with make bench
bench:
	go run ./cmd/benchrecord -out $(BENCH_OUT) -note "$(BENCH_NOTE)"

# One-iteration benchmark pass: compile-and-run smoke, no timing value.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# The steady-state allocation guard of the coloring engine: fails if
# Factorizer/Matcher/Splitter reuse regresses past the alloc budget. The
# streaming path is covered too: a warmed Stream drain allocates nothing
# beyond its handle, and RouteStream+Collect stays within Route's budget
# plus the fixed stream handles. TestHRelationPooledAllocBudget guards the
# pooled h-relation path of Execute: steady state must stay under half the
# allocations of the per-call RouteHRelation it supersedes (the measured
# delta is recorded in BENCH_2026-07-30_hrelation.json). The tracing layer
# rides the same gate: span recording, the tracer's pooled Start/Finish
# cycle, plan-time Observe on an existing key, and a traced plan-cache hit
# must all stay at 0 allocs/op. The binary wire codec holds the same bar:
# a pooled slot-frame encode+decode cycle and a Reframer relay step are
# 0 allocs/op in steady state (the measured codec delta is recorded in
# BENCH_2026-08-08_wirebin.json).
alloc-guard:
	go test -run 'TestFactorizerAllocBudget|TestStreamAllocBudget|TestMatcherSteadyStateAllocFree|TestSplitterSteadyStateAllocFree' \
		-count=1 ./internal/edgecolor ./internal/matching ./internal/graph
	go test -run 'TestSpanAllocBudget|TestPlanTimesObserveAllocBudget' -count=1 ./internal/obs
	go test -run 'TestWireEncodeAllocBudget|TestReframerAllocBudget' -count=1 ./internal/wirebin
	go test -run 'TestRouteStreamAllocBudget|TestHRelationPooledAllocBudget|TestCachedHitSpanAllocBudget' -count=1 .
