package pops

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestPlanCacheHitsRepeatedPermutation(t *testing.T) {
	p, err := NewPlanner(4, 8, WithPlanCache(16))
	if err != nil {
		t.Fatal(err)
	}
	pi := VectorReversal(32)
	first, err := p.Route(pi)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Route(pi)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("repeated permutation was replanned instead of served from the cache")
	}
	// A copy of the permutation hits too: the key is content, not identity.
	third, err := p.Route(append([]int(nil), pi...))
	if err != nil {
		t.Fatal(err)
	}
	if third != first {
		t.Fatal("copied permutation missed the cache")
	}
	stats := p.CacheStats()
	if stats.Hits != 2 || stats.Misses != 1 || stats.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 entry", stats)
	}
	if _, err := second.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheHitIsAllocFree pins the point of consulting the cache before
// checking out a worker planner: a hit costs a fingerprint walk and a map
// lookup, no planner (or arena) allocation.
func TestPlanCacheHitIsAllocFree(t *testing.T) {
	p, err := NewPlanner(4, 8, WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	pi := VectorReversal(32)
	if _, err := p.Route(pi); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Route(pi); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("cache hit allocates %.0f objects/op, want 0", allocs)
	}
}

func TestPlanCacheEvictsLRU(t *testing.T) {
	p, err := NewPlanner(2, 4, WithPlanCache(2))
	if err != nil {
		t.Fatal(err)
	}
	a := IdentityPermutation(8)
	b := VectorReversal(8)
	c, err := MeshShift(2, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range [][]int{a, b} {
		if _, err := p.Route(pi); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes the LRU entry, then insert c to evict b.
	if _, err := p.Route(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Route(c); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.CachedPlan(a); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := p.CachedPlan(b); ok {
		t.Fatal("LRU entry survived past capacity")
	}
	stats := p.CacheStats()
	if stats.Evictions != 1 || stats.Entries != 2 || stats.Capacity != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries, capacity 2", stats)
	}
}

func TestPlanCacheConcurrentRouteIsRaceFreeAndCorrect(t *testing.T) {
	const d, g = 4, 4
	p, err := NewPlanner(d, g, WithPlanCache(8), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pis := make([][]int, 4)
	for i := range pis {
		pis[i] = RandomPermutation(d*g, rng)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				pi := pis[(seed+iter)%len(pis)]
				plan, err := p.Route(pi)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(plan.Pi, pi) {
					t.Error("cache returned a plan for the wrong permutation")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := p.CacheStats()
	if stats.Hits+stats.Misses != 200 {
		t.Fatalf("lookups = %d, want 200", stats.Hits+stats.Misses)
	}
	if stats.Hits == 0 {
		t.Fatal("no cache hits across 200 routes of 4 permutations")
	}
}

func TestRouteBatchCachedReportsAttribution(t *testing.T) {
	p, err := NewPlanner(4, 4, WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	pi := VectorReversal(16)
	other := IdentityPermutation(16)
	plans, cached, err := p.RouteBatchCached([][]int{pi, other})
	if err != nil {
		t.Fatal(err)
	}
	if cached[0] || cached[1] {
		t.Fatalf("cold batch reported cache hits: %v", cached)
	}
	plans2, cached2, err := p.RouteBatchCached([][]int{pi, other})
	if err != nil {
		t.Fatal(err)
	}
	if !cached2[0] || !cached2[1] {
		t.Fatalf("warm batch missed the cache: %v", cached2)
	}
	if plans2[0] != plans[0] || plans2[1] != plans[1] {
		t.Fatal("warm batch returned different plan pointers")
	}
}

func TestCacheStatsZeroWithoutOption(t *testing.T) {
	p, err := NewPlanner(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Route(IdentityPermutation(4)); err != nil {
		t.Fatal(err)
	}
	if got := p.CacheStats(); got != (CacheStats{}) {
		t.Fatalf("CacheStats without WithPlanCache = %+v, want zero", got)
	}
	if _, ok := p.CachedPlan(IdentityPermutation(4)); ok {
		t.Fatal("CachedPlan reported a hit without a cache")
	}
}
