package pops

import "context"

// Backend is the routing-service surface a caller plans against, abstracted
// over fleet size: a single popsserved node (reached through ServiceClient)
// and a popsproxy front door fanning the same requests out across many nodes
// (internal/cluster's Proxy) implement the identical contract, so code
// written against Backend cannot tell one machine from a fleet.
//
// The methods mirror the wire endpoints: Execute is POST /route for one
// workload, ExecuteStream is POST /route/stream (the returned stream must be
// Closed), Slots is GET /slots, Stats is GET /stats, and Healthz is
// GET /healthz. Implementations are safe for concurrent use.
type Backend interface {
	// Execute plans one workload on POPS(d, g). Workload planning failures
	// are returned as errors, mirroring ServiceClient.Execute.
	Execute(ctx context.Context, d, g int, w Workload) (*ServicePlan, error)
	// ExecuteStream opens a slot stream for one workload. The caller must
	// Close the returned stream.
	ExecuteStream(ctx context.Context, d, g int, w Workload) (*ServiceStream, error)
	// Slots returns the Theorem 2 slot count for POPS(d, g).
	Slots(ctx context.Context, d, g int) (int, error)
	// Stats snapshots the backend's counters. A fleet backend aggregates
	// per-node stats and lists each node under StatsResponse.Backends.
	Stats(ctx context.Context) (*ServiceStats, error)
	// Healthz reports liveness: nil while the backend admits requests. A
	// fleet backend is live while at least one node is.
	Healthz(ctx context.Context) error
}

// ServiceClient speaks the wire protocol against one node; internal/cluster
// asserts the same for its fleet proxy.
var _ Backend = (*ServiceClient)(nil)
