package pops

import (
	"context"
	"sync"
	"testing"
	"time"

	"pops/internal/obs"
)

// recordingObserver captures ObservePlan calls for assertions.
type recordingObserver struct {
	mu  sync.Mutex
	obs []struct {
		strategy string
		cached   bool
		dur      time.Duration
	}
}

func (r *recordingObserver) ObservePlan(strategy string, cached bool, d time.Duration) {
	r.mu.Lock()
	r.obs = append(r.obs, struct {
		strategy string
		cached   bool
		dur      time.Duration
	}{strategy, cached, d})
	r.mu.Unlock()
}

func TestWithPlanObserver(t *testing.T) {
	rec := &recordingObserver{}
	p, err := NewPlanner(4, 8, WithPlanCache(4), WithPlanObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	pi := VectorReversal(32)
	if _, err := p.Route(pi); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Route(pi); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.obs) != 2 {
		t.Fatalf("observer saw %d plans, want 2", len(rec.obs))
	}
	first, second := rec.obs[0], rec.obs[1]
	if first.cached || first.strategy != StrategyTheoremTwo {
		t.Errorf("first observation = %+v, want a fresh %s plan", first, StrategyTheoremTwo)
	}
	if !second.cached || second.strategy != StrategyTheoremTwo {
		t.Errorf("second observation = %+v, want a cache hit", second)
	}
	if first.dur <= 0 || second.dur <= 0 {
		t.Errorf("durations not measured: %v / %v", first.dur, second.dur)
	}
	// A hit costs a lookup, not a plan: it should be far cheaper.
	if second.dur > first.dur {
		t.Logf("note: hit (%v) slower than plan (%v) — scheduling noise, not asserted", second.dur, first.dur)
	}
}

// TestCachedHitSpanAllocBudget pins the acceptance budget of the tentpole:
// recording trace phases on the plan-cache-hit path must not allocate. The
// span and the workload value are reused across iterations the way the
// serving layer reuses them (pooled span, one boxed workload per request
// type), so any allocation here would be tracing overhead on every cached
// request.
func TestCachedHitSpanAllocBudget(t *testing.T) {
	p, err := NewPlanner(4, 8, WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	pi := VectorReversal(32)
	var w Workload = Permutation(pi)
	ctx := context.Background()
	if _, err := p.Execute(ctx, w); err != nil {
		t.Fatal(err) // warm the cache
	}
	sp := &obs.Span{}
	traced := obs.ContextWithSpan(ctx, sp)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Execute(traced, w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("traced cache hit allocates %.1f objects/op, want 0", allocs)
	}
	if sp.Phase(obs.PhaseCache) <= 0 {
		t.Fatal("cache lookups recorded no cache-phase time on the span")
	}
}
