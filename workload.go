package pops

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pops/internal/core"
	"pops/internal/obs"
	"pops/internal/perms"
)

// Workload kind tags, as reported by Workload.Kind and spoken on the wire
// (the "workload" field of the routing service's requests).
const (
	WorkloadPermutation       = "permutation"
	WorkloadHRelation         = "hrelation"
	WorkloadAllToAll          = "all-to-all"
	WorkloadOneToAll          = "one-to-all"
	WorkloadFaultyPermutation = "faulty-permutation"
)

// Workload is one routing problem on a POPS(d, g) network: the paper's
// Theorem 2 permutation, its h-relation generalization, the complete
// exchange, the one-slot broadcast, or a permutation routed around dead
// hardware. Workloads are built with the Permutation, HRelation, AllToAll,
// OneToAll and FaultyPermutation constructors and executed —
// batch or streaming — by the one pair of Planner methods:
//
//	plan, err := planner.Execute(ctx, pops.Permutation(pi))
//	stream, err := planner.ExecuteStream(ctx, pops.HRelation(reqs))
//
// Every workload kind inherits the Planner's pooled worker arenas, its
// fingerprint plan cache (keyed by the workload-kind tag mixed into the
// content fingerprint), and — over the wire — the service's sharding and
// slot streaming. The interface is sealed: the five constructors enumerate
// the supported kinds.
type Workload interface {
	// Kind returns the workload's tag (WorkloadPermutation, ...).
	Kind() string
	sealed()
}

type permutationWorkload struct{ pi []int }

func (permutationWorkload) Kind() string { return WorkloadPermutation }
func (permutationWorkload) sealed()      {}

type hrelationWorkload struct{ reqs []Request }

func (hrelationWorkload) Kind() string { return WorkloadHRelation }
func (hrelationWorkload) sealed()      {}

type allToAllWorkload struct{}

func (allToAllWorkload) Kind() string { return WorkloadAllToAll }
func (allToAllWorkload) sealed()      {}

type oneToAllWorkload struct{ speaker int }

func (oneToAllWorkload) Kind() string { return WorkloadOneToAll }
func (oneToAllWorkload) sealed()      {}

// Permutation is the Theorem 2 workload: route permutation pi in exactly
// OptimalSlots(d, g) slots. The resulting Plan fills Pi, Colors and Rounds.
func Permutation(pi []int) Workload { return permutationWorkload{pi: pi} }

// HRelation is the h-relation workload: deliver every request of reqs,
// where each processor appears at most h times as a source and at most h
// times as a destination, in h · OptimalSlots(d, g) slots (König
// decomposition into h Theorem 2 rounds). The resulting Plan fills Reqs, H
// and Factors.
func HRelation(reqs []Request) Workload { return hrelationWorkload{reqs: reqs} }

// AllToAll is the complete-exchange workload: every processor sends one
// distinct packet to every other processor, an (n−1)-relation routed like
// HRelation. The request list is deterministic (see RouteAllToAll), so the
// workload is fully determined by the planner's shape — repeated executions
// hit the plan cache without rebuilding the n·(n−1) requests.
func AllToAll() Workload { return allToAllWorkload{} }

// OneToAll is the broadcast workload: the paper's one-slot schedule
// delivering the speaker's packet to every processor. The resulting Plan
// records the Speaker.
func OneToAll(speaker int) Workload { return oneToAllWorkload{speaker: speaker} }

// Cache key kinds. The key mixes a per-kind salt into the content
// fingerprint so equal content under different kinds cannot alias, and
// every hit still re-verifies kind and identity.
const (
	cacheKindPermutation uint8 = iota
	cacheKindHRelation
	cacheKindAllToAll
	cacheKindOneToAll
	cacheKindFaulty
)

// workloadSalt[kind] is XORed into the content fingerprint. Permutations
// keep a zero salt, so PermutationFingerprint remains the exact cache key
// of permutation plans.
var workloadSalt = [...]uint64{
	cacheKindPermutation: 0,
	cacheKindHRelation:   0x9e3779b97f4a7c15,
	cacheKindAllToAll:    0xc2b2ae3d27d4eb4f,
	cacheKindOneToAll:    0x165667b19e3779f9,
	cacheKindFaulty:      0x27d4eb2f165667c5,
}

// flattenRequests serializes reqs for fingerprinting and cache identity
// checks: src₀, dst₀, src₁, dst₁, …
func flattenRequests(reqs []Request) []int {
	flat := make([]int, 0, 2*len(reqs))
	for _, r := range reqs {
		flat = append(flat, r.Src, r.Dst)
	}
	return flat
}

// workloadKey resolves a workload to its cache key, kind tag, and flattened
// identity (the ident is what hits re-verify for equality).
func workloadKey(w Workload) (key uint64, kind uint8, ident []int) {
	switch w := w.(type) {
	case permutationWorkload:
		return perms.Fingerprint(w.pi), cacheKindPermutation, w.pi
	case hrelationWorkload:
		flat := flattenRequests(w.reqs)
		return perms.Fingerprint(flat) ^ workloadSalt[cacheKindHRelation], cacheKindHRelation, flat
	case allToAllWorkload:
		return perms.Fingerprint(nil) ^ workloadSalt[cacheKindAllToAll], cacheKindAllToAll, nil
	case oneToAllWorkload:
		ident = []int{w.speaker}
		return perms.Fingerprint(ident) ^ workloadSalt[cacheKindOneToAll], cacheKindOneToAll, ident
	case faultyWorkload:
		flat := faultyIdent(w.faults, w.pi)
		return perms.Fingerprint(flat) ^ workloadSalt[cacheKindFaulty], cacheKindFaulty, flat
	default:
		panic(fmt.Sprintf("pops: unknown workload type %T", w))
	}
}

// cacheIdentFor recovers a plan's flattened cache identity from the plan
// itself — plan-owned memory, safe to snapshot into the cache even when the
// caller has since reused its request or permutation buffers.
func cacheIdentFor(kind uint8, plan *Plan) []int {
	switch kind {
	case cacheKindPermutation:
		return plan.Pi
	case cacheKindHRelation:
		return flattenRequests(plan.Reqs)
	case cacheKindFaulty:
		// plan.Faults is already canonical (zero for delegated empty-fault
		// plans, which AppendIdent encodes as [0, 0] — matching the
		// workload's ident for an empty set).
		return faultyIdent(plan.Faults, plan.Pi)
	default:
		return nil
	}
}

// WorkloadFingerprint returns the 64-bit cache key of w: the content
// fingerprint of the workload (PermutationFingerprint for permutations, the
// request-list fingerprint for h-relations) mixed with the workload-kind
// tag. It is the key of the Planner's plan cache and the fingerprint the
// routing service reports for non-permutation workloads.
func WorkloadFingerprint(w Workload) uint64 {
	key, _, _ := workloadKey(w)
	return key
}

// ErrNilWorkload is returned by Execute and ExecuteStream for a nil
// workload.
var ErrNilWorkload = errors.New("pops: nil workload")

// Execute plans workload w, reusing the planner's pooled worker arenas.
// It is the workload-polymorphic form of Route: Permutation workloads
// produce exactly the plan Route returns, HRelation and AllToAll workloads
// the plan RouteHRelation/RouteAllToAll return, and OneToAll the one-slot
// broadcast. With WithPlanCache, recurring workloads of any kind are
// answered from the fingerprint plan cache.
//
// ctx gates the work: an already-cancelled context returns ctx.Err()
// without acquiring a worker planner, and h-relation planning re-checks
// cancellation between König factors. The returned Plan owns its memory and
// stays valid across subsequent calls.
func (p *Planner) Execute(ctx context.Context, w Workload) (*Plan, error) {
	plan, _, err := p.ExecuteCached(ctx, w)
	return plan, err
}

// ExecuteCached is Execute plus cache attribution: cached reports whether
// the plan was answered from the fingerprint plan cache (always false
// without WithPlanCache). It is the primitive the serving layer uses, where
// hit/miss visibility is part of the response.
func (p *Planner) ExecuteCached(ctx context.Context, w Workload) (plan *Plan, cached bool, err error) {
	if w == nil {
		return nil, false, ErrNilWorkload
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	switch w := w.(type) {
	case permutationWorkload:
		return p.routePermutation(ctx, w.pi)
	case hrelationWorkload:
		return p.executeWorkload(ctx, w, func(pl *core.Planner) (*Plan, error) {
			return pl.PlanHRelation(ctx, w.reqs)
		})
	case allToAllWorkload:
		return p.executeWorkload(ctx, w, func(pl *core.Planner) (*Plan, error) {
			return pl.PlanHRelation(ctx, core.AllToAllRequests(p.nw.N()))
		})
	case faultyWorkload:
		return p.executeWorkload(ctx, w, func(pl *core.Planner) (*Plan, error) {
			return pl.PlanFaulty(ctx, w.pi, w.faults)
		})
	case oneToAllWorkload:
		// Broadcast planning is a single O(n) fan-out slot: cheaper than a
		// cache round-trip, so it is always planned fresh, with no worker.
		start := time.Now()
		plan, err := p.broadcastPlan(w.speaker)
		if err != nil {
			return nil, false, err
		}
		p.observePlan(plan.Strategy, false, start)
		return plan, false, nil
	default:
		return nil, false, fmt.Errorf("pops: unknown workload type %T", w)
	}
}

// broadcastPlan builds the one-to-all plan, honoring WithVerify like every
// other workload kind.
func (p *Planner) broadcastPlan(speaker int) (*Plan, error) {
	plan, err := core.BroadcastPlan(p.nw, speaker)
	if err != nil {
		return nil, err
	}
	if p.opts.Verify {
		if _, err := plan.Verify(); err != nil {
			return nil, fmt.Errorf("pops: broadcast schedule failed verification: %w", err)
		}
	}
	return plan, nil
}

// routePermutation is the permutation fast path of ExecuteCached, shared
// with the deprecated Planner.Route: it avoids boxing a workload value, so
// a fingerprint-cache hit stays allocation-free.
func (p *Planner) routePermutation(ctx context.Context, pi []int) (*Plan, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	start := time.Now()
	sp := obs.SpanFromContext(ctx)
	if p.cache != nil {
		sp.Begin(obs.PhaseCache)
		plan, ok := p.cache.get(perms.Fingerprint(pi), cacheKindPermutation, pi)
		sp.End()
		if ok {
			p.observePlan(plan.Strategy, true, start)
			return plan, true, nil
		}
	}
	pl := p.acquire()
	defer p.release(pl)
	plan, err := pl.PlanCtx(ctx, pi)
	if err != nil {
		return nil, false, err
	}
	if p.cache != nil {
		sp.Begin(obs.PhaseCache)
		p.cache.put(perms.Fingerprint(pi), cacheKindPermutation, pi, plan)
		sp.End()
	}
	p.observePlan(plan.Strategy, false, start)
	return plan, false, nil
}

// executeWorkload is the shared cache-then-plan path: a verified cache hit
// skips planning entirely; a miss checks a worker planner out of the pool,
// plans, memoizes, and returns the worker.
func (p *Planner) executeWorkload(ctx context.Context, w Workload, plan func(*core.Planner) (*Plan, error)) (*Plan, bool, error) {
	start := time.Now()
	sp := obs.SpanFromContext(ctx)
	var key uint64
	var kind uint8
	if p.cache != nil {
		var ident []int
		key, kind, ident = workloadKey(w)
		sp.Begin(obs.PhaseCache)
		hit, ok := p.cache.get(key, kind, ident)
		sp.End()
		if ok {
			p.observePlan(hit.Strategy, true, start)
			return hit, true, nil
		}
	}
	pl := p.acquire()
	defer p.release(pl)
	built, err := plan(pl)
	if err != nil {
		return nil, false, err
	}
	if p.cache != nil {
		sp.Begin(obs.PhaseCache)
		p.cache.put(key, kind, cacheIdentFor(kind, built), built)
		sp.End()
	}
	p.observePlan(built.Strategy, false, start)
	return built, false, nil
}

// ExecuteStream begins streaming the plan of workload w: the returned
// PlanStream delivers the schedule as slot fragments while planning is
// still in progress. For Permutation workloads fragments are per relay
// color class, exactly like RouteStream; for HRelation and AllToAll
// workloads each fragment is one whole schedule slot, emitted as soon as
// its König factor has been peeled from the request-graph factorization and
// routed — the first slots are ready long before the factorization behind a
// batch Execute completes. OneToAll streams its single slot. With
// WithPlanCache, a memoized workload short-circuits to a materialized
// stream that replays whole slots and holds no worker planner.
//
// ctx gates the stream: an already-cancelled context returns ctx.Err()
// without acquiring a worker, and cancelling it mid-stream stops factor
// production at the next Next call — the stream fails with ctx.Err() and
// its worker planner returns to the pool (see PlanStream for the ownership
// contract; Close remains safe and idempotent).
func (p *Planner) ExecuteStream(ctx context.Context, w Workload) (*PlanStream, error) {
	if w == nil {
		return nil, ErrNilWorkload
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if ow, ok := w.(oneToAllWorkload); ok {
		plan, err := p.broadcastPlan(ow.speaker)
		if err != nil {
			return nil, err
		}
		p.observePlan(plan.Strategy, false, start)
		return &PlanStream{p: p, plan: plan, nocache: true, total: plan.SlotCount()}, nil
	}
	if fw, ok := w.(faultyWorkload); ok {
		// Fault repair is whole-plan (Kempe flips are global), so the stream
		// materializes the finished plan and replays whole slots — the same
		// shape a fingerprint-cache hit streams. ExecuteCached already
		// memoized the plan, hence nocache.
		plan, cached, err := p.ExecuteCached(ctx, Workload(fw))
		if err != nil {
			return nil, err
		}
		return &PlanStream{p: p, plan: plan, cached: cached, nocache: true, total: plan.SlotCount()}, nil
	}

	sp := obs.SpanFromContext(ctx)
	var key uint64
	var kind uint8
	hasKey := p.cache != nil
	if hasKey {
		var ident []int
		key, kind, ident = workloadKey(w)
		sp.Begin(obs.PhaseCache)
		plan, ok := p.cache.get(key, kind, ident)
		sp.End()
		if ok {
			p.observePlan(plan.Strategy, true, start)
			return &PlanStream{p: p, plan: plan, cached: true, ckey: key, ckind: kind, hasKey: true, total: plan.SlotCount()}, nil
		}
	}
	worker := p.acquire()
	var cs coreStream
	var err error
	switch w := w.(type) {
	case permutationWorkload:
		cs, err = worker.StartPlanCtx(ctx, w.pi)
	case hrelationWorkload:
		cs, err = worker.StartHRelation(ctx, w.reqs)
	case allToAllWorkload:
		cs, err = worker.StartHRelation(ctx, core.AllToAllRequests(p.nw.N()))
	default:
		err = fmt.Errorf("pops: unknown workload type %T", w)
	}
	if err != nil {
		p.release(worker)
		return nil, err
	}
	return &PlanStream{p: p, worker: worker, cs: cs, ckey: key, ckind: kind, hasKey: hasKey, total: cs.FragmentCount(), span: sp, obsStart: start}, nil
}
