package pops

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomRelation builds the union of h random permutations on n processors:
// a saturated h-relation with exactly h sends and receives per processor.
func randomRelation(n, h int, rng *rand.Rand) []Request {
	reqs := make([]Request, 0, n*h)
	for k := 0; k < h; k++ {
		for i, v := range RandomPermutation(n, rng) {
			reqs = append(reqs, Request{Src: i, Dst: v})
		}
	}
	return reqs
}

// schedulesEqual renders both schedules to their canonical text and fails
// with the diff when they diverge.
func schedulesEqual(t *testing.T, got, want *Schedule, context string) {
	t.Helper()
	var g, w bytes.Buffer
	if err := got.Format(&g); err != nil {
		t.Fatal(err)
	}
	if err := want.Format(&w); err != nil {
		t.Fatal(err)
	}
	if g.String() != w.String() {
		t.Fatalf("%s: schedules diverge.\ngot:\n%s\nwant:\n%s", context, g.String(), w.String())
	}
}

// TestExecutePermutationEqualsRoute pins the migration contract of the
// deprecated wrappers: Execute(Permutation(pi)) is byte-identical to
// Route(pi) on every shape.
func TestExecutePermutationEqualsRoute(t *testing.T) {
	ctx := context.Background()
	for _, s := range []struct{ d, g int }{{1, 5}, {2, 2}, {3, 3}, {8, 4}, {4, 16}} {
		p, err := NewPlanner(s.d, s.g)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			pi := RandomPermutation(s.d*s.g, rand.New(rand.NewSource(seed)))
			want, err := p.Route(pi)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Execute(ctx, Permutation(pi))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Pi, want.Pi) || !reflect.DeepEqual(got.Colors, want.Colors) ||
				got.Strategy != want.Strategy || got.Rounds != want.Rounds {
				t.Fatalf("d=%d g=%d: Execute plan metadata diverges from Route", s.d, s.g)
			}
			schedulesEqual(t, got.Schedule(), want.Schedule(), "execute-vs-route")
		}
	}
}

// TestExecuteStreamHRelationEqualsRouteHRelation pins the h-relation side:
// Execute(HRelation(reqs)), ExecuteStream(HRelation(reqs)).Collect() and the
// deprecated RouteHRelation wrapper produce slot-for-slot identical
// schedules, and the streamed fragments tile the schedule exactly.
func TestExecuteStreamHRelationEqualsRouteHRelation(t *testing.T) {
	ctx := context.Background()
	for _, s := range []struct{ d, g, h int }{{1, 4, 2}, {2, 2, 3}, {4, 4, 2}, {3, 5, 4}, {8, 2, 2}} {
		p, err := NewPlanner(s.d, s.g)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			reqs := randomRelation(s.d*s.g, s.h, rand.New(rand.NewSource(seed)))
			legacy, err := RouteHRelation(s.d, s.g, reqs)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := p.Execute(ctx, HRelation(reqs))
			if err != nil {
				t.Fatal(err)
			}
			ps, err := p.ExecuteStream(ctx, HRelation(reqs))
			if err != nil {
				t.Fatal(err)
			}
			var frags []StreamedSlot
			for {
				frag, ok := ps.Next()
				if !ok {
					break
				}
				frags = append(frags, frag)
			}
			if err := ps.Err(); err != nil {
				t.Fatal(err)
			}
			streamed, err := ps.Collect()
			if err != nil {
				t.Fatal(err)
			}

			if batch.H != s.h || streamed.H != s.h || legacy.H != s.h {
				t.Fatalf("d=%d g=%d: degrees %d/%d/%d, want %d", s.d, s.g, batch.H, streamed.H, legacy.H, s.h)
			}
			if !reflect.DeepEqual(batch.Factors, streamed.Factors) || !reflect.DeepEqual(batch.Factors, legacy.Factors) {
				t.Fatalf("d=%d g=%d seed=%d: factor listings diverge", s.d, s.g, seed)
			}
			schedulesEqual(t, streamed.Schedule(), batch.Schedule(), "stream-vs-execute")
			schedulesEqual(t, batch.Schedule(), legacy.Schedule(), "execute-vs-wrapper")
			if _, err := streamed.Verify(); err != nil {
				t.Fatalf("d=%d g=%d seed=%d: %v", s.d, s.g, seed, err)
			}

			// Fragment contract: one whole slot per fragment, each slot
			// delivered exactly once, fragment count as promised.
			if len(frags) != ps.FragmentCount() || len(frags) != streamed.SlotCount() {
				t.Fatalf("%d fragments for %d slots (promised %d)", len(frags), streamed.SlotCount(), ps.FragmentCount())
			}
			seen := make([]bool, streamed.SlotCount())
			for _, frag := range frags {
				if !frag.Final || frag.Offset != 0 {
					t.Fatalf("fragment %+v is not a whole slot", frag)
				}
				if seen[frag.Slot] {
					t.Fatalf("slot %d delivered twice", frag.Slot)
				}
				seen[frag.Slot] = true
				if frag.Color < 0 || frag.Color >= s.h {
					t.Fatalf("fragment of slot %d carries factor %d outside [0,%d)", frag.Slot, frag.Color, s.h)
				}
			}
		}
	}
}

// TestExecuteHRelationQuick is the randomized property form over sparse
// relations (padding exercised) and all shapes.
func TestExecuteHRelationQuick(t *testing.T) {
	ctx := context.Background()
	f := func(dSeed, gSeed, mSeed uint8, seed int64) bool {
		d := int(dSeed)%4 + 1
		g := int(gSeed)%4 + 1
		n := d * g
		m := int(mSeed) % (2 * n)
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]Request, m)
		for i := range reqs {
			reqs[i] = Request{Src: rng.Intn(n), Dst: rng.Intn(n)}
		}
		p, err := NewPlanner(d, g)
		if err != nil {
			return false
		}
		batch, err := p.Execute(ctx, HRelation(reqs))
		if err != nil {
			return false
		}
		ps, err := p.ExecuteStream(ctx, HRelation(reqs))
		if err != nil {
			return false
		}
		streamed, err := ps.Collect()
		if err != nil {
			return false
		}
		var gb, wb bytes.Buffer
		if streamed.Schedule().Format(&gb) != nil || batch.Schedule().Format(&wb) != nil {
			return false
		}
		if gb.String() != wb.String() {
			return false
		}
		_, err = streamed.Verify()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzExecuteStreamHRelation is the native-fuzzer form: fuzzer-chosen
// shapes, degrees, backends and seeds must keep stream and batch h-relation
// planning byte-identical and deliverable.
func FuzzExecuteStreamHRelation(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(2), uint8(0), int64(1))
	f.Add(uint8(4), uint8(3), uint8(3), uint8(1), int64(7))
	f.Add(uint8(1), uint8(6), uint8(2), uint8(2), int64(3))
	f.Fuzz(func(t *testing.T, dSeed, gSeed, hSeed, algoSeed uint8, seed int64) {
		d := int(dSeed)%5 + 1
		g := int(gSeed)%5 + 1
		h := int(hSeed)%3 + 1
		algo := []Algorithm{RepeatedMatching, EulerSplitDC, Insertion}[int(algoSeed)%3]
		p, err := NewPlanner(d, g, WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		reqs := randomRelation(d*g, h, rand.New(rand.NewSource(seed)))
		batch, err := p.Execute(context.Background(), HRelation(reqs))
		if err != nil {
			t.Fatal(err)
		}
		ps, err := p.ExecuteStream(context.Background(), HRelation(reqs))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := ps.Collect()
		if err != nil {
			t.Fatal(err)
		}
		schedulesEqual(t, streamed.Schedule(), batch.Schedule(), "fuzz stream-vs-batch")
		if _, err := streamed.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestExecuteAllToAllMatchesWrapperAndCaches pins the AllToAll workload to
// the deprecated wrapper and its plan-cache behavior: the exchange is fully
// determined by the shape, so a second Execute is a cache hit returning the
// same *Plan.
func TestExecuteAllToAllMatchesWrapperAndCaches(t *testing.T) {
	ctx := context.Background()
	legacy, err := RouteAllToAll(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(2, 3, WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	first, cached, err := p.ExecuteCached(ctx, AllToAll())
	if err != nil || cached {
		t.Fatalf("first all-to-all: cached=%v err=%v", cached, err)
	}
	if first.H != 2*3-1 || first.Strategy != StrategyHRelation {
		t.Fatalf("all-to-all plan: h=%d strategy=%q", first.H, first.Strategy)
	}
	schedulesEqual(t, first.Schedule(), legacy.Schedule(), "all-to-all-vs-wrapper")
	second, cached, err := p.ExecuteCached(ctx, AllToAll())
	if err != nil || !cached || second != first {
		t.Fatalf("second all-to-all: cached=%v same=%v err=%v", cached, second == first, err)
	}
	if _, err := first.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteHRelationCacheRoundTrip pins the workload plan cache: a
// streamed h-relation is memoized on completion, a repeated Execute hits it,
// and the replay stream reports Cached with whole-slot fragments.
func TestExecuteHRelationCacheRoundTrip(t *testing.T) {
	ctx := context.Background()
	const d, g, h = 2, 4, 2
	p, err := NewPlanner(d, g, WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	reqs := randomRelation(d*g, h, rand.New(rand.NewSource(5)))

	ps, err := p.ExecuteStream(ctx, HRelation(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Cached() {
		t.Fatal("first stream claims a cache hit")
	}
	plan, err := ps.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got, cached, err := p.ExecuteCached(ctx, HRelation(reqs))
	if err != nil || !cached || got != plan {
		t.Fatalf("execute after stream: cached=%v same=%v err=%v", cached, got == plan, err)
	}

	replay, err := p.ExecuteStream(ctx, HRelation(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Cached() {
		t.Fatal("replay stream missed the cache")
	}
	count := 0
	for {
		frag, ok := replay.Next()
		if !ok {
			break
		}
		if frag.Color != -1 || !frag.Final {
			t.Fatalf("replay fragment %+v is not a whole slot", frag)
		}
		count++
	}
	if count != plan.SlotCount() {
		t.Fatalf("replay emitted %d fragments, want %d", count, plan.SlotCount())
	}

	// A permutation with the same flattened content must not alias the
	// h-relation entry: kinds are part of the cache identity.
	if _, ok := p.CachedWorkload(Permutation(flattenRequests(reqs))); ok {
		t.Fatal("permutation workload hit the h-relation cache entry")
	}
}

// TestWorkloadFingerprint pins the key contract: permutation workloads keep
// the raw PermutationFingerprint, and the other kinds are salted apart.
func TestWorkloadFingerprint(t *testing.T) {
	pi := []int{2, 0, 1, 3}
	if WorkloadFingerprint(Permutation(pi)) != PermutationFingerprint(pi) {
		t.Fatal("permutation workload fingerprint diverges from PermutationFingerprint")
	}
	reqs := []Request{{Src: 2, Dst: 0}, {Src: 1, Dst: 3}}
	flat := flattenRequests(reqs)
	if WorkloadFingerprint(HRelation(reqs)) == PermutationFingerprint(flat) {
		t.Fatal("h-relation fingerprint collides with the flattened permutation fingerprint")
	}
	if WorkloadFingerprint(AllToAll()) == WorkloadFingerprint(OneToAll(0)) {
		t.Fatal("all-to-all and one-to-all fingerprints collide")
	}
}

// TestExecuteCancelledContext is the regression test for the context
// contract: an already-cancelled context returns ctx.Err() before any
// validation or planning — even for workloads that could never plan — and
// before a worker planner is acquired.
func TestExecuteCancelledContext(t *testing.T) {
	p, err := NewPlanner(4, 4, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// An invalid permutation would fail validation — ctx.Err() coming back
	// instead proves the context gate runs first, before any worker is
	// checked out or any planning state touched.
	badPi := []int{0, 0, 0}
	if _, err := p.Execute(ctx, Permutation(badPi)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := p.ExecuteStream(ctx, Permutation(badPi)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteStream on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := p.Execute(ctx, HRelation([]Request{{Src: 0, Dst: 99}})); !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute(HRelation) on cancelled ctx = %v, want context.Canceled", err)
	}
	if len(p.free) != 0 {
		t.Fatalf("cancelled calls parked %d workers in the free list; none should have been acquired", len(p.free))
	}

	// The planner must remain fully usable afterwards.
	plan, err := p.Execute(context.Background(), Permutation(RandomPermutation(16, rand.New(rand.NewSource(1)))))
	if err != nil || plan.SlotCount() != OptimalSlots(4, 4) {
		t.Fatalf("planner unusable after cancelled calls: %v", err)
	}
}

// TestExecuteStreamCancelMidStream is the streaming half of the context
// regression: cancelling mid-stream stops factor production, surfaces
// ctx.Err() through Err, and returns the pooled worker without Close.
func TestExecuteStreamCancelMidStream(t *testing.T) {
	const d, g, h = 4, 4, 3
	p, err := NewPlanner(d, g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	reqs := randomRelation(d*g, h, rand.New(rand.NewSource(11)))

	for _, tc := range []struct {
		name string
		w    Workload
	}{
		{"hrelation", HRelation(reqs)},
		{"permutation", Permutation(RandomPermutation(d*g, rand.New(rand.NewSource(3))))},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		ps, err := p.ExecuteStream(ctx, tc.w)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, ok := ps.Next(); !ok {
			t.Fatalf("%s: no first fragment", tc.name)
		}
		cancel() // stop factor production mid-stream
		for {
			if _, ok := ps.Next(); !ok {
				break
			}
		}
		if err := ps.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Err() after cancel = %v, want context.Canceled", tc.name, err)
		}
		if got := len(p.free); got != 1 {
			t.Fatalf("%s: free list holds %d workers after cancellation, want 1 (worker returned)", tc.name, got)
		}
		if _, err := ps.Collect(); err == nil {
			t.Fatalf("%s: Collect on a cancelled stream succeeded", tc.name)
		}
		ps.Close() // must stay idempotent after the error path released the worker
		if got := len(p.free); got != 1 {
			t.Fatalf("%s: Close after cancellation corrupted the free list (%d workers)", tc.name, got)
		}
	}
	// The recycled worker must still plan correctly after cancellations.
	if _, err := p.Execute(context.Background(), HRelation(reqs)); err != nil {
		t.Fatal(err)
	}
}

// TestHRelationPooledAllocBudget is the alloc-guard half of moving
// h-relations onto the pooled planners: steady-state Execute on a warmed
// planner must allocate well under half of what the per-call deprecated
// RouteHRelation costs (which rebuilds planner, arenas and demand graph
// every call).
func TestHRelationPooledAllocBudget(t *testing.T) {
	const d, g, h = 4, 8, 3
	p, err := NewPlanner(d, g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	reqs := randomRelation(d*g, h, rand.New(rand.NewSource(23)))
	ctx := context.Background()
	if _, err := p.Execute(ctx, HRelation(reqs)); err != nil { // warm arenas
		t.Fatal(err)
	}
	pooled := testing.AllocsPerRun(10, func() {
		if _, err := p.Execute(ctx, HRelation(reqs)); err != nil {
			t.Fatal(err)
		}
	})
	perCall := testing.AllocsPerRun(10, func() {
		if _, err := RouteHRelation(d, g, reqs); err != nil {
			t.Fatal(err)
		}
	})
	if pooled*2 >= perCall {
		t.Errorf("pooled h-relation allocates %.0f/op vs per-call %.0f/op; want < half", pooled, perCall)
	}
	t.Logf("h-relation allocs/op: pooled %.0f vs per-call %.0f", pooled, perCall)
}
