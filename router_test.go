package pops

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pops/internal/perms"
)

func TestAllRoutersImplementInterfaceAndRoundTrip(t *testing.T) {
	routers, err := AllRouters(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(routers) != len(Strategies()) {
		t.Fatalf("AllRouters returned %d routers, want %d", len(routers), len(Strategies()))
	}
	for i, r := range routers {
		if r.Name() != Strategies()[i] {
			t.Fatalf("router %d Name() = %q, want %q", i, r.Name(), Strategies()[i])
		}
		viaFactory, err := NewRouter(r.Name(), 4, 4)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", r.Name(), err)
		}
		if viaFactory.Name() != r.Name() {
			t.Fatalf("factory round trip: %q != %q", viaFactory.Name(), r.Name())
		}
	}
	if _, err := NewRouter("warp-drive", 4, 4); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := NewRouter(StrategyTheoremTwo, 0, 4); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestAutoPicksSingleSlotOnOneSlotRoutable(t *testing.T) {
	for _, s := range []struct{ d, g int }{{1, 8}, {2, 4}, {3, 8}, {4, 4}} {
		pi := perms.Staircase(s.d, s.g)
		ok, err := IsOneSlotRoutable(s.d, s.g, pi)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("staircase on POPS(%d,%d) not single-slot routable", s.d, s.g)
		}
		auto, err := NewAuto(s.d, s.g, WithVerify(true))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := auto.Route(pi)
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", s.d, s.g, err)
		}
		if plan.Strategy != StrategySingleSlot {
			t.Fatalf("d=%d g=%d: auto picked %q, want %q", s.d, s.g, plan.Strategy, StrategySingleSlot)
		}
		if plan.SlotCount() != 1 {
			t.Fatalf("d=%d g=%d: single-slot plan uses %d slots", s.d, s.g, plan.SlotCount())
		}
		predicted, err := auto.PredictedSlots(pi)
		if err != nil || predicted != 1 {
			t.Fatalf("d=%d g=%d: predicted %d (err %v), want 1", s.d, s.g, predicted, err)
		}
	}
}

func TestAutoNeverExceedsTheoremTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ d, g int }{{1, 6}, {2, 2}, {2, 8}, {4, 4}, {8, 2}, {8, 8}, {9, 3}, {16, 4}}
	for _, s := range shapes {
		auto, err := NewAuto(s.d, s.g, WithVerify(true))
		if err != nil {
			t.Fatal(err)
		}
		theorem, err := NewTheoremTwo(s.d, s.g)
		if err != nil {
			t.Fatal(err)
		}
		workloads := [][]int{
			RandomPermutation(s.d*s.g, rng),
			VectorReversal(s.d * s.g),
			IdentityPermutation(s.d * s.g),
		}
		if rot, err := GroupRotation(s.d, s.g, 1); err == nil {
			workloads = append(workloads, rot)
		}
		if s.d <= s.g {
			workloads = append(workloads, perms.Staircase(s.d, s.g))
		}
		for _, pi := range workloads {
			autoPlan, err := auto.Route(pi)
			if err != nil {
				t.Fatalf("d=%d g=%d: auto: %v", s.d, s.g, err)
			}
			theoremPlan, err := theorem.Route(pi)
			if err != nil {
				t.Fatalf("d=%d g=%d: theorem2: %v", s.d, s.g, err)
			}
			if autoPlan.SlotCount() > theoremPlan.SlotCount() {
				t.Fatalf("d=%d g=%d: auto (%s) used %d slots, theorem2 only %d",
					s.d, s.g, autoPlan.Strategy, autoPlan.SlotCount(), theoremPlan.SlotCount())
			}
			predicted, err := auto.PredictedSlots(pi)
			if err != nil {
				t.Fatalf("d=%d g=%d: predict: %v", s.d, s.g, err)
			}
			if predicted != autoPlan.SlotCount() {
				t.Fatalf("d=%d g=%d: predicted %d but routed %d", s.d, s.g, predicted, autoPlan.SlotCount())
			}
		}
	}
}

func TestPredictedSlotsMatchesRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range []struct{ d, g int }{{2, 4}, {4, 4}, {8, 2}} {
		pi := RandomPermutation(s.d*s.g, rng)
		routers, err := AllRouters(s.d, s.g)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range routers {
			predicted, perr := r.PredictedSlots(pi)
			plan, rerr := r.Route(pi)
			if (perr == nil) != (rerr == nil) {
				t.Fatalf("d=%d g=%d %s: predict err %v, route err %v", s.d, s.g, r.Name(), perr, rerr)
			}
			if perr != nil {
				continue // strategy does not apply (single slot on general pi)
			}
			if predicted != plan.SlotCount() {
				t.Fatalf("d=%d g=%d %s: predicted %d, routed %d",
					s.d, s.g, r.Name(), predicted, plan.SlotCount())
			}
		}
	}
}

func TestRouteBatchMatchesSequentialAndIsOrderStable(t *testing.T) {
	const d, g = 4, 8
	rng := rand.New(rand.NewSource(13))
	pis := make([][]int, 24)
	for i := range pis {
		pis[i] = RandomPermutation(d*g, rng)
	}
	for _, par := range []int{1, 3, 8} {
		planner, err := NewPlanner(d, g, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		plans, err := planner.RouteBatch(pis)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(plans) != len(pis) {
			t.Fatalf("par=%d: %d plans for %d permutations", par, len(plans), len(pis))
		}
		for i, plan := range plans {
			if !reflect.DeepEqual(plan.Pi, pis[i]) {
				t.Fatalf("par=%d: plan %d is for the wrong permutation", par, i)
			}
			seq, err := Route(d, g, pis[i])
			if err != nil {
				t.Fatal(err)
			}
			// Planning is deterministic, so the batch schedule must be
			// identical to the sequential one, not merely equivalent.
			if !reflect.DeepEqual(plan.Schedule().Slots, seq.Schedule().Slots) {
				t.Fatalf("par=%d: plan %d differs from sequential Route", par, i)
			}
			if _, err := plan.Verify(); err != nil {
				t.Fatalf("par=%d: plan %d: %v", par, i, err)
			}
		}
	}
}

func TestRouteBatchAggregatesAllErrorsAndKeepsSuccesses(t *testing.T) {
	planner, err := NewPlanner(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pis := [][]int{
		IdentityPermutation(4),
		{0, 1, 2},    // wrong length
		{0, 0, 1, 1}, // not a permutation
		VectorReversal(4),
	}
	plans, err := planner.RouteBatch(pis)
	if err == nil {
		t.Fatal("batch with invalid permutations succeeded")
	}
	// Every failing index is named, not just the lowest.
	for _, want := range []string{"batch permutation 1", "batch permutation 2"} {
		if got := err.Error(); !strings.Contains(got, want) {
			t.Fatalf("error %q does not name failing index (%q)", got, want)
		}
	}
	// The join unwraps into typed per-index errors.
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("batch error %T is not an errors.Join aggregate", err)
	}
	var indices []int
	for _, sub := range joined.Unwrap() {
		var be *BatchError
		if !errors.As(sub, &be) {
			t.Fatalf("joined element %v is not a *BatchError", sub)
		}
		indices = append(indices, be.Index)
	}
	if !reflect.DeepEqual(indices, []int{1, 2}) {
		t.Fatalf("failing indices = %v, want [1 2]", indices)
	}
	// Successful plans are still returned; nil only at failing indices.
	if plans[0] == nil || plans[3] == nil {
		t.Fatalf("successful plans were dropped: %v", plans)
	}
	if plans[1] != nil || plans[2] != nil {
		t.Fatalf("failing indices carry non-nil plans: %v", plans)
	}
	for _, i := range []int{0, 3} {
		if _, err := plans[i].Verify(); err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
	}
}

func TestPlannerRectangularShapes(t *testing.T) {
	// g >> d and d >> g exercise the invariant-check scratch sizing: the
	// per-class check must stay O(n), not O(g·max(d,g)).
	rng := rand.New(rand.NewSource(21))
	for _, s := range []struct{ d, g int }{{2, 128}, {3, 64}, {64, 2}} {
		p, err := NewPlanner(s.d, s.g)
		if err != nil {
			t.Fatal(err)
		}
		for it := 0; it < 2; it++ {
			plan, err := p.Route(RandomPermutation(s.d*s.g, rng))
			if err != nil {
				t.Fatalf("d=%d g=%d: %v", s.d, s.g, err)
			}
			if _, err := plan.Verify(); err != nil {
				t.Fatalf("d=%d g=%d: %v", s.d, s.g, err)
			}
		}
	}
}

func TestPlannerConcurrentRoute(t *testing.T) {
	planner, err := NewPlanner(8, 4, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for w := 0; w < len(errs); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < 10; it++ {
				pi := RandomPermutation(32, rng)
				plan, err := planner.Route(pi)
				if err != nil {
					errs[w] = err
					return
				}
				if _, err := plan.Verify(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

func TestRouterVerifyOptionCatchesNothingOnGoodPlans(t *testing.T) {
	// WithVerify must be transparent on correct schedules for every strategy.
	pi := perms.Staircase(2, 4)
	routers, err := AllRouters(2, 4, WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routers {
		if _, err := r.Route(pi); err != nil {
			t.Fatalf("%s with verify: %v", r.Name(), err)
		}
	}
}
