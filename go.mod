module pops

go 1.24
