package pops

// Benchmark harness: one benchmark per experiment of DESIGN.md's index.
// Run with: go test -bench=. -benchmem
//
// E1  — planning random permutations across network shapes
// E7  — Theorem 2 vs greedy baseline on the adversarial workload
// E10 — Remark 1: edge-coloring backend comparison
// E11 — planning-cost scaling at fixed d/g ratios
// plus simulator replay and application-level (Cannon matmul, hypercube
// scan) benchmarks for E12.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"pops/internal/core"
	"pops/internal/hypercube"
	"pops/internal/matmul"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

func benchShapes() []struct{ d, g int } {
	return []struct{ d, g int }{
		{1, 64}, {8, 8}, {4, 16}, {16, 4}, {32, 32}, {64, 16}, {16, 64},
	}
}

// BenchmarkE1PlanRandom measures end-to-end planning (demand graph, balanced
// coloring, schedule construction) for random permutations.
func BenchmarkE1PlanRandom(b *testing.B) {
	for _, s := range benchShapes() {
		rng := rand.New(rand.NewSource(1))
		pi := perms.Random(s.d*s.g, rng)
		b.Run(fmt.Sprintf("d=%d/g=%d/n=%d", s.d, s.g, s.d*s.g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := core.PlanRoute(s.d, s.g, pi, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if p.SlotCount() != core.OptimalSlots(s.d, s.g) {
					b.Fatal("wrong slot count")
				}
			}
		})
	}
}

// BenchmarkE7Theorem2VsGreedy compares planner and baseline on the
// group-rotation adversary where the separation is Θ(g).
func BenchmarkE7Theorem2VsGreedy(b *testing.B) {
	d, g := 32, 32
	pi, err := perms.GroupRotation(d, g, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("theorem2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.PlanRoute(d, g, pi, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if p.SlotCount() != 2 {
				b.Fatal("wrong slot count")
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		greedy, err := NewGreedy(d, g)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := greedy.Route(pi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlannerReuse compares one-shot Route calls (network validation
// and fresh scratch buffers every time) against a reused Planner, which
// validates once and recycles its demand graph and invariant tables. The
// planner side must show fewer allocs/op.
func BenchmarkPlannerReuse(b *testing.B) {
	for _, s := range []struct{ d, g int }{{8, 8}, {32, 32}, {16, 64}} {
		rng := rand.New(rand.NewSource(6))
		pi := perms.Random(s.d*s.g, rng)
		b.Run(fmt.Sprintf("route-percall/d=%d/g=%d", s.d, s.g), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Route(s.d, s.g, pi); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("planner-reuse/d=%d/g=%d", s.d, s.g), func(b *testing.B) {
			p, err := NewPlanner(s.d, s.g)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Route(pi); err != nil { // warm the buffer free list
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Route(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("planner-nocopy/d=%d/g=%d", s.d, s.g), func(b *testing.B) {
			p, err := NewPlanner(s.d, s.g, WithPlanNoCopy())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Route(pi); err != nil { // warm the buffer free list
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Route(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouteBatch plans a fixed batch of permutations per iteration:
// once per-call through the facade Route (the pre-Planner API shape), then
// through Planner.RouteBatch at parallelism 1, 4, and GOMAXPROCS. The batch
// path must show fewer allocs/op than the per-call path.
func BenchmarkRouteBatch(b *testing.B) {
	const d, g, batch = 16, 16, 64
	rng := rand.New(rand.NewSource(7))
	pis := make([][]int, batch)
	for i := range pis {
		pis[i] = perms.Random(d*g, rng)
	}
	b.Run("route-percall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, pi := range pis {
				if _, err := Route(d, g, pi); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	parallelisms := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		parallelisms = append(parallelisms, p)
	}
	for _, par := range parallelisms {
		b.Run(fmt.Sprintf("batch/parallel=%d", par), func(b *testing.B) {
			p, err := NewPlanner(d, g, WithParallelism(par))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.RouteBatch(pis); err != nil { // warm the free list
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.RouteBatch(pis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimeToFirstSlot measures the streaming pipeline's headline win:
// time until the first slot fragment of a plan is usable. route-full is the
// baseline — a batch Route call, whose first slot is only ready when the
// whole plan is; stream-first-slot runs RouteStream until the first Next
// returns and abandons the stream (Close); stream-collect drains the stream
// to the finished plan, bounding the streaming overhead against route-full.
func BenchmarkTimeToFirstSlot(b *testing.B) {
	shapes := []struct{ d, g int }{{8, 8}, {8, 64}, {32, 8}, {32, 64}, {16, 64}}
	for _, s := range shapes {
		rng := rand.New(rand.NewSource(21))
		pi := perms.Random(s.d*s.g, rng)
		newPlanner := func(b *testing.B) *Planner {
			p, err := NewPlanner(s.d, s.g)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Route(pi); err != nil { // warm the worker free list
				b.Fatal(err)
			}
			return p
		}
		b.Run(fmt.Sprintf("route-full/d=%d/g=%d", s.d, s.g), func(b *testing.B) {
			p := newPlanner(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Route(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("stream-first-slot/d=%d/g=%d", s.d, s.g), func(b *testing.B) {
			p := newPlanner(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := p.RouteStream(pi)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := ps.Next(); !ok {
					b.Fatal("no first fragment")
				}
				ps.Close()
			}
		})
		b.Run(fmt.Sprintf("stream-collect/d=%d/g=%d", s.d, s.g), func(b *testing.B) {
			p := newPlanner(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := p.RouteStream(pi)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ps.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHRelation measures the pooled h-relation planning of the
// Execute surface against the per-call deprecated RouteHRelation (which
// rebuilds planner, arenas and demand graph every call), plus the streaming
// pipeline's time-to-first-slot: execute-stream-first-slot runs
// ExecuteStream(HRelation) until the first Next returns and abandons the
// stream, so its ns/op is the latency until the first routed slot is usable
// — the ISSUE bar is < 25% of execute-pooled at d=16, g=64.
func BenchmarkHRelation(b *testing.B) {
	ctx := context.Background()
	for _, s := range []struct{ d, g, h int }{{8, 8, 4}, {16, 64, 8}} {
		rng := rand.New(rand.NewSource(29))
		n := s.d * s.g
		reqs := make([]Request, 0, n*s.h)
		for k := 0; k < s.h; k++ {
			for i, v := range perms.Random(n, rng) {
				reqs = append(reqs, Request{Src: i, Dst: v})
			}
		}
		newPlanner := func(b *testing.B) *Planner {
			p, err := NewPlanner(s.d, s.g)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Execute(ctx, HRelation(reqs)); err != nil { // warm the arenas
				b.Fatal(err)
			}
			return p
		}
		b.Run(fmt.Sprintf("route-percall/d=%d/g=%d/h=%d", s.d, s.g, s.h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RouteHRelation(s.d, s.g, reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("execute-pooled/d=%d/g=%d/h=%d", s.d, s.g, s.h), func(b *testing.B) {
			p := newPlanner(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(ctx, HRelation(reqs)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("execute-stream-first-slot/d=%d/g=%d/h=%d", s.d, s.g, s.h), func(b *testing.B) {
			p := newPlanner(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := p.ExecuteStream(ctx, HRelation(reqs))
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := ps.Next(); !ok {
					b.Fatal("no first fragment")
				}
				ps.Close()
			}
		})
		b.Run(fmt.Sprintf("execute-stream-collect/d=%d/g=%d/h=%d", s.d, s.g, s.h), func(b *testing.B) {
			p := newPlanner(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := p.ExecuteStream(ctx, HRelation(reqs))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ps.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Factorize compares the three 1-factorization backends on the
// square (d = g) planning workload — the Remark 1 ablation.
func BenchmarkE10Factorize(b *testing.B) {
	for _, algo := range []Algorithm{RepeatedMatching, EulerSplitDC, Insertion} {
		for _, g := range []int{32, 128, 512} {
			rng := rand.New(rand.NewSource(2))
			pi := perms.Random(g*g, rng)
			b.Run(fmt.Sprintf("%v/g=%d", algo, g), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.PlanRoute(g, g, pi, core.Options{Algorithm: algo}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE11PlanScaling sweeps n at fixed d/g ratios with the default
// backend (the paper's O(g³) / O(n log d) complexity discussion).
func BenchmarkE11PlanScaling(b *testing.B) {
	type shape struct {
		name string
		d, g int
	}
	var shapes []shape
	for _, g := range []int{32, 64, 128, 256} {
		shapes = append(shapes, shape{fmt.Sprintf("d=g/g=%d", g), g, g})
	}
	for _, g := range []int{16, 32, 64} {
		shapes = append(shapes, shape{fmt.Sprintf("d=4g/g=%d", g), 4 * g, g})
		shapes = append(shapes, shape{fmt.Sprintf("g=4d/d=%d", g), g, 4 * g})
	}
	for _, s := range shapes {
		rng := rand.New(rand.NewSource(3))
		pi := perms.Random(s.d*s.g, rng)
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PlanRoute(s.d, s.g, pi, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorReplay measures the popsnet oracle itself: replaying and
// conflict-checking a planned schedule.
func BenchmarkSimulatorReplay(b *testing.B) {
	for _, s := range []struct{ d, g int }{{8, 8}, {32, 32}, {64, 16}} {
		rng := rand.New(rand.NewSource(4))
		pi := perms.Random(s.d*s.g, rng)
		p, err := core.PlanRoute(s.d, s.g, pi, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sched := p.Schedule()
		b.Run(fmt.Sprintf("d=%d/g=%d", s.d, s.g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := popsnet.VerifyPermutationRouted(sched, pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12Matmul measures Cannon's algorithm end to end (planning +
// verified replay of every data movement).
func BenchmarkE12Matmul(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := 8
	a := make([][]int64, m)
	bb := make([][]int64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]int64, m)
		bb[i] = make([]int64, m)
		for j := 0; j < m; j++ {
			a[i][j] = int64(rng.Intn(10))
			bb[i][j] = int64(rng.Intn(10))
		}
	}
	b.Run(fmt.Sprintf("m=%d/POPS(8,8)", m), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := matmul.Multiply(m, 8, 8, a, bb, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Slots != matmul.PredictedSlots(m, 8, 8) {
				b.Fatal("slot mismatch")
			}
		}
	})
}

// BenchmarkE12HypercubeScan measures a full prefix-sum scan on a simulated
// hypercube, including all verified routings.
func BenchmarkE12HypercubeScan(b *testing.B) {
	bits, d, g := 6, 8, 8
	vals := make([]int64, 1<<bits)
	for i := range vals {
		vals[i] = int64(i)
	}
	b.Run(fmt.Sprintf("bits=%d/POPS(%d,%d)", bits, d, g), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := hypercube.New(bits, d, g, nil, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Load(vals); err != nil {
				b.Fatal(err)
			}
			if err := m.PrefixSum(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBroadcast measures the one-slot one-to-all primitive.
func BenchmarkBroadcast(b *testing.B) {
	nw, err := NewNetwork(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := BroadcastSchedule(nw, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultyPermutation measures fault-aware planning across the bench
// shapes: the Theorem 2 coloring plus the repair of every color class touched
// by the seeded four-coupler dead set (see TestFaultyPlanSlotBound for the
// slot-count budget these plans stay within).
func BenchmarkFaultyPermutation(b *testing.B) {
	ctx := context.Background()
	for _, s := range benchShapes() {
		rng := rand.New(rand.NewSource(int64(s.d*31 + s.g)))
		pi := perms.Random(s.d*s.g, rng)
		fs := seededFaults(s.g, rng)
		p, err := NewPlanner(s.d, s.g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("d=%d/g=%d/n=%d", s.d, s.g, s.d*s.g), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(ctx, FaultyPermutation(pi, fs)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
